type event = Join of int | Leave of int

type schedule = (float * event) list

let flash_crowd rng ~candidates ~n ~spacing =
  let picked = Scenario.pick_receivers rng ~candidates ~n in
  List.mapi (fun i r -> (spacing *. float_of_int (i + 1), Join r)) picked

module Iset = Set.Make (Int)

let poisson rng ~candidates ~rate ~mean_hold ~horizon =
  if rate <= 0.0 then invalid_arg "Churn.poisson: rate must be positive";
  let all = Iset.of_list candidates in
  (* Generate join arrivals, then each member's departure; merge and
     keep membership consistent (no double-join, leaves only for
     members). *)
  let events = ref [] in
  let members = ref Iset.empty in
  (* Pending leaves as a simple time-ordered association list. *)
  let leaves = ref [] in
  let pop_leaves_before t =
    let due, later = List.partition (fun (lt, _) -> lt <= t) !leaves in
    leaves := later;
    List.iter
      (fun (lt, r) ->
        members := Iset.remove r !members;
        events := (lt, Leave r) :: !events)
      (List.sort compare due)
  in
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    t := !t +. Stats.Rng.exponential rng (1.0 /. rate);
    if !t > horizon then continue := false
    else begin
      pop_leaves_before !t;
      let free = Iset.elements (Iset.diff all !members) in
      match free with
      | [] -> () (* group full; arrival lost *)
      | _ ->
          let r = Stats.Rng.pick rng free in
          members := Iset.add r !members;
          events := (!t, Join r) :: !events;
          let hold = Stats.Rng.exponential rng mean_hold in
          let lt = !t +. hold in
          if lt <= horizon then leaves := (lt, r) :: !leaves
    end
  done;
  pop_leaves_before horizon;
  List.sort compare (List.rev !events)

(* Multi-channel merge: channel [c]'s stream comes from its own
   derived rng, so the merged schedule is order-free deterministic —
   byte-identical however the channels are processed, the property
   the parallel sweeps lean on.  The stable sort keyed on (time,
   channel) preserves each channel's own event order at ties, so
   projecting the merge back onto one channel returns exactly that
   channel's standalone schedule. *)
let multi ~seed ~channels ~candidates ~rate ~popularity ~mean_hold ~horizon =
  if channels < 1 then invalid_arg "Churn.multi: need channels >= 1";
  if Zipf.n popularity <> channels then
    invalid_arg "Churn.multi: popularity size must match channel count";
  let streams =
    List.init channels (fun c ->
        let rng = Stats.Rng.derive ~seed ~index:c in
        let rate_c = rate *. Zipf.pmf popularity c in
        if rate_c <= 0.0 then []
        else
          poisson rng ~candidates ~rate:rate_c ~mean_hold ~horizon
          |> List.map (fun (t, ev) -> (t, c, ev)))
  in
  List.stable_sort
    (fun (t1, c1, _) (t2, c2, _) ->
      match Float.compare t1 t2 with 0 -> Int.compare c1 c2 | d -> d)
    (List.concat streams)

let project sched c =
  List.filter_map (fun (t, c', ev) -> if c' = c then Some (t, ev) else None) sched

let members_at schedule time =
  List.fold_left
    (fun acc (t, ev) ->
      if t > time then acc
      else
        match ev with
        | Join r -> Iset.add r acc
        | Leave r -> Iset.remove r acc)
    Iset.empty schedule
  |> Iset.elements

let pp_event ppf = function
  | Join r -> Format.fprintf ppf "join(%d)" r
  | Leave r -> Format.fprintf ppf "leave(%d)" r
