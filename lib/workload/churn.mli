(** Group-dynamics workloads: timed join/leave schedules.

    Used by the tree-stability experiment (how much does a departure
    perturb the remaining receivers?) and by the event-driven protocol
    demos. *)

type event = Join of int | Leave of int

type schedule = (float * event) list
(** Time-ordered. *)

val flash_crowd :
  Stats.Rng.t -> candidates:int list -> n:int -> spacing:float -> schedule
(** [n] receivers join, one every [spacing] time units starting at
    [spacing], in random order; nobody leaves. *)

val poisson :
  Stats.Rng.t ->
  candidates:int list ->
  rate:float ->
  mean_hold:float ->
  horizon:float ->
  schedule
(** Joins arrive as a Poisson process of the given [rate] (candidates
    drawn uniformly among those not currently members); each member
    stays an exponential [mean_hold] time, then leaves.  Events after
    [horizon] are discarded. *)

(** {1 Multi-channel streams} *)

val multi :
  seed:int ->
  channels:int ->
  candidates:int list ->
  rate:float ->
  popularity:Zipf.t ->
  mean_hold:float ->
  horizon:float ->
  (float * int * event) list
(** One merged (time, channel, event) stream over [channels] channels:
    channel [c] runs its own {!poisson} process at
    [rate *. Zipf.pmf popularity c] (so [rate] is the aggregate join
    rate), seeded from [Stats.Rng.derive ~seed ~index:c] — order-free
    deterministic, the property the [--jobs] byte-identity gate leans
    on.  Ties sort by channel with each channel's own order
    preserved, so {!project} returns exactly the standalone
    schedule. *)

val project : (float * int * event) list -> int -> schedule
(** The merged stream's events for one channel, in stream order. *)

val members_at : schedule -> float -> int list
(** Group membership just after the given time, ascending. *)

val pp_event : Format.formatter -> event -> unit
