type t = { cdf : float array }

let create ?(s = 1.0) ~n () =
  if n < 1 then invalid_arg "Zipf.create: need n >= 1";
  if s < 0.0 then invalid_arg "Zipf.create: negative exponent";
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i wi ->
      acc := !acc +. wi;
      cdf.(i) <- !acc /. total)
    w;
  (* Pin the tail so a draw of u -> 1.0 cannot fall off the end. *)
  cdf.(n - 1) <- 1.0;
  { cdf }

let n t = Array.length t.cdf
let pmf t k = if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)

let sample t rng =
  let u = Stats.Rng.float rng 1.0 in
  (* First index with cdf > u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
