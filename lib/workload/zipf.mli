(** Zipf(s) rank popularity over [0 .. n-1]: rank [k] has weight
    [1 / (k+1)^s].  The channel-popularity model of the multi-channel
    workloads — a few hot groups carry most of the join traffic, a
    long tail barely any (the measured shape of multicast/stream
    audiences).  Sampling is a binary search over the precomputed
    CDF: O(log n), allocation-free, deterministic from the caller's
    {!Stats.Rng}. *)

type t

val create : ?s:float -> n:int -> unit -> t
(** Default exponent [s = 1.0] (classic Zipf).  [s = 0] degenerates
    to uniform.  Raises [Invalid_argument] if [n < 1] or [s < 0]. *)

val n : t -> int

val pmf : t -> int -> float
(** Probability of rank [k], [0 <= k < n]. *)

val sample : t -> Stats.Rng.t -> int
(** Draw a rank. *)
