#!/usr/bin/env bash
# Output-equivalence oracle for the proto runtime port.
#
# Two seeded driver runs are pinned against goldens captured before the
# refactor:
#   * `hbh_sim faults --seed 42` is bit-identical (full output).
#   * `hbh_sim scaling --large --sizes 50,200` is pinned on its
#     deterministic projection: router count and SPF work columns plus
#     the route-equivalence verdict.  Wall-clock columns (seconds,
#     speedup, per-query ns) are excluded.
#
# Prints one `output-equivalence: <run> OK|MISMATCH` line per run and
# exits nonzero on any mismatch.  CI greps for the OK lines.
set -u
cd "$(dirname "$0")/.."

run() { dune exec bin/hbh_sim.exe -- "$@" 2>/dev/null; }

status=0

if run faults --seed 42 | diff -u test/golden/faults-seed42.golden -; then
  echo "output-equivalence: faults OK"
else
  status=1
  echo "output-equivalence: faults MISMATCH"
fi

if run scaling --large --sizes 50,200 \
    | awk '$1 ~ /^[0-9]+$/ { print $1, $5, $6 } /route-equivalence/ { print }' \
    | diff -u test/golden/scaling-large.golden -; then
  echo "output-equivalence: scaling OK"
else
  status=1
  echo "output-equivalence: scaling MISMATCH"
fi

exit $status
