(* CLI argument-validation contract: every bad invocation — unknown
   subcommand, unknown knob, non-positive duration or interval —
   must exit 2 through the one shared usage printer, so scripts can
   tell "bad invocation" from "run failed" (exit 1) and "run passed"
   (exit 0).  Exercised against the real binary, not Cmdliner
   internals: these are the exact command lines CI and the docs
   advertise. *)

let exe = Filename.concat (Filename.concat ".." "bin") "hbh_sim.exe"

let run args =
  let code =
    Sys.command
      (Printf.sprintf "%s %s >cli_out.txt 2>cli_err.txt" exe args)
  in
  let read f =
    let ic = open_in f in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (code, read "cli_out.txt", read "cli_err.txt")

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_usage_exit name args ~msg =
  let code, _, err = run args in
  Alcotest.(check int) (name ^ ": exit code") 2 code;
  Alcotest.(check bool)
    (name ^ ": diagnostic on stderr")
    true (contains err msg);
  Alcotest.(check bool)
    (name ^ ": shared usage printer ran")
    true
    (contains err "usage: hbh_sim")

let test_soak_negative_hours () =
  check_usage_exit "soak --hours=-1" "soak --hours=-1"
    ~msg:"--hours must be a positive number"

let test_soak_too_short () =
  check_usage_exit "soak --hours 0.1" "soak --hours 0.1"
    ~msg:"no room for a partition/heal cycle"

let test_soak_unknown_knob () =
  check_usage_exit "soak --frobnicate" "soak --frobnicate"
    ~msg:"unknown option"

let test_faults_bad_timeline () =
  check_usage_exit "faults --timeline=-5" "faults --timeline=-5"
    ~msg:"--timeline needs a positive sampling interval"

let test_unknown_subcommand () =
  check_usage_exit "definitely-not-a-command" "definitely-not-a-command"
    ~msg:"unknown command"

let test_churn_zero_channels () =
  check_usage_exit "churn --channels 0" "churn --channels 0"
    ~msg:"--channels must be >= 1"

let test_churn_tiny_topology () =
  check_usage_exit "churn --routers 4" "churn --routers 4"
    ~msg:"--routers must be >= 16"

let test_churn_negative_rate () =
  check_usage_exit "churn --rate=-0.5" "churn --rate=-0.5"
    ~msg:"--rate must be a positive join rate"

let test_churn_bad_generator () =
  check_usage_exit "churn --gen ladder" "churn --gen ladder" ~msg:"--gen"

let test_churn_bad_sample_interval () =
  check_usage_exit "churn --sample-every 0" "churn --sample-every 0"
    ~msg:"--sample-every must be a positive interval"

(* The shared --protocol converter: the registry-derived spelling
   [hpim-dm] must be accepted wherever --protocol is, near-misses must
   be rejected by the enum with the known names listed, and validate —
   which has analytic oracles only for the soft-state refcounting
   protocols — must refuse it through the same exit-2 funnel. *)
let test_protocol_bad_spelling () =
  check_usage_exit "faults --protocol hpimdm" "faults --protocol hpimdm"
    ~msg:"invalid value 'hpimdm'"

let test_validate_rejects_hpim () =
  check_usage_exit "validate --protocol hpim-dm" "validate --protocol hpim-dm"
    ~msg:"validate has no analytic HPIM-DM oracle"

let test_usage_advertises_hpim () =
  let _, _, err = run "definitely-not-a-command" in
  Alcotest.(check bool)
    "usage lists hpim-dm" true
    (contains err "hbh|reunite|pim-ssm|hpim-dm")

(* One good invocation end to end: the short soak must complete with
   silent monitors and exit 0 — the same gate the CI smoke greps. *)
let test_soak_smoke () =
  let code, out, _ = run "soak --hours 1 --seed 42 --protocol hbh" in
  Alcotest.(check int) "soak exit code" 0 code;
  Alcotest.(check bool)
    "monitors silent" true
    (contains out "monitors: 0 violations")

(* Same gate for the hard-state instance: accepted spelling, clean
   run, silent runtime monitors. *)
let test_soak_smoke_hpim () =
  let code, out, _ = run "soak --hours 1 --seed 42 --protocol hpim-dm" in
  Alcotest.(check int) "soak exit code" 0 code;
  Alcotest.(check bool)
    "monitors silent" true
    (contains out "monitors: 0 violations")

let () =
  Alcotest.run "cli"
    [
      ( "exit-2 funnel",
        [
          Alcotest.test_case "soak rejects negative --hours" `Quick
            test_soak_negative_hours;
          Alcotest.test_case "soak rejects a too-short horizon" `Quick
            test_soak_too_short;
          Alcotest.test_case "soak rejects unknown knobs" `Quick
            test_soak_unknown_knob;
          Alcotest.test_case "faults rejects a non-positive --timeline" `Quick
            test_faults_bad_timeline;
          Alcotest.test_case "unknown subcommands funnel to usage" `Quick
            test_unknown_subcommand;
          Alcotest.test_case "churn rejects zero --channels" `Quick
            test_churn_zero_channels;
          Alcotest.test_case "churn rejects a toy topology" `Quick
            test_churn_tiny_topology;
          Alcotest.test_case "churn rejects a negative --rate" `Quick
            test_churn_negative_rate;
          Alcotest.test_case "churn rejects an unknown --gen" `Quick
            test_churn_bad_generator;
          Alcotest.test_case "churn rejects a zero --sample-every" `Quick
            test_churn_bad_sample_interval;
          Alcotest.test_case "--protocol rejects near-miss spellings" `Quick
            test_protocol_bad_spelling;
          Alcotest.test_case "validate refuses hpim-dm" `Quick
            test_validate_rejects_hpim;
          Alcotest.test_case "usage advertises hpim-dm" `Quick
            test_usage_advertises_hpim;
        ] );
      ( "soak smoke",
        [
          Alcotest.test_case "1-hour HBH soak passes with silent monitors"
            `Quick test_soak_smoke;
          Alcotest.test_case "1-hour HPIM-DM soak passes with silent monitors"
            `Quick test_soak_smoke_hpim;
        ] );
    ]
