(* Tests for the discrete-event engine: ordering, cancellation, time
   limits, periodic and watchdog timers. *)

module E = Eventsim.Engine
module T = Eventsim.Timer

let test_clock_starts_at_zero () =
  let e = E.create () in
  Alcotest.(check (float 0.0)) "t=0" 0.0 (E.now e)

let test_events_fire_in_time_order () =
  let e = E.create () in
  let log = ref [] in
  ignore (E.schedule e ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (E.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (E.schedule e ~delay:2.0 (fun () -> log := 2 :: !log));
  E.run e;
  Alcotest.(check (list int)) "ascending by time" [ 1; 2; 3 ] (List.rev !log)

let test_same_time_fifo () =
  let e = E.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (E.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  E.run e;
  Alcotest.(check (list int)) "fifo within an instant" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_clock_advances () =
  let e = E.create () in
  let seen = ref 0.0 in
  ignore (E.schedule e ~delay:5.5 (fun () -> seen := E.now e));
  E.run e;
  Alcotest.(check (float 0.0)) "callback sees its time" 5.5 !seen;
  Alcotest.(check (float 0.0)) "clock rests at last event" 5.5 (E.now e)

let test_cancel () =
  let e = E.create () in
  let fired = ref false in
  let h = E.schedule e ~delay:1.0 (fun () -> fired := true) in
  E.cancel h;
  E.run e;
  Alcotest.(check bool) "cancelled event silent" false !fired;
  Alcotest.(check bool) "flag set" true (E.cancelled h);
  Alcotest.(check int) "not counted as fired" 0 (E.events_fired e)

let test_schedule_from_callback () =
  let e = E.create () in
  let log = ref [] in
  ignore
    (E.schedule e ~delay:1.0 (fun () ->
         log := "a" :: !log;
         ignore (E.schedule e ~delay:1.0 (fun () -> log := "b" :: !log))));
  E.run e;
  Alcotest.(check (list string)) "chained" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check (float 0.0)) "time 2" 2.0 (E.now e)

let test_run_until () =
  let e = E.create () in
  let fired = ref [] in
  List.iter
    (fun d -> ignore (E.schedule e ~delay:d (fun () -> fired := d :: !fired)))
    [ 1.0; 2.0; 3.0; 4.0 ];
  E.run ~until:2.5 e;
  Alcotest.(check (list (float 0.0))) "only early events" [ 1.0; 2.0 ]
    (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock at limit" 2.5 (E.now e);
  E.run e;
  Alcotest.(check int) "rest fire later" 4 (List.length !fired)

let test_run_until_inclusive () =
  let e = E.create () in
  let fired = ref false in
  ignore (E.schedule e ~delay:2.0 (fun () -> fired := true));
  E.run ~until:2.0 e;
  Alcotest.(check bool) "event exactly at limit fires" true !fired

let test_max_events () =
  let e = E.create () in
  let count = ref 0 in
  let rec loop () =
    incr count;
    ignore (E.schedule e ~delay:1.0 loop)
  in
  ignore (E.schedule e ~delay:1.0 loop);
  E.run ~max_events:10 e;
  Alcotest.(check int) "stopped by budget" 10 !count

let test_past_scheduling_rejected () =
  let e = E.create () in
  ignore (E.schedule e ~delay:5.0 (fun () -> ()));
  E.run e;
  Alcotest.(check bool) "negative delay" true
    (try
       ignore (E.schedule e ~delay:(-1.0) (fun () -> ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "past absolute time" true
    (try
       ignore (E.schedule_at e ~time:1.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* ---- Timers ------------------------------------------------------------ *)

let test_periodic_timer () =
  let e = E.create () in
  let ticks = ref [] in
  let t = T.every e ~period:10.0 (fun () -> ticks := E.now e :: !ticks) in
  E.run ~until:35.0 e;
  T.stop t;
  Alcotest.(check (list (float 0.0))) "three ticks" [ 10.0; 20.0; 30.0 ]
    (List.rev !ticks)

let test_periodic_with_start () =
  let e = E.create () in
  let ticks = ref 0 in
  ignore (T.every e ~start:1.0 ~period:10.0 (fun () -> incr ticks));
  E.run ~until:22.0 e;
  Alcotest.(check int) "ticks at 1, 11, 21" 3 !ticks

let test_timer_stop () =
  let e = E.create () in
  let ticks = ref 0 in
  let t = T.every e ~period:1.0 (fun () -> incr ticks) in
  ignore (E.schedule e ~delay:3.5 (fun () -> T.stop t));
  E.run ~until:10.0 e;
  Alcotest.(check int) "stopped after 3 ticks" 3 !ticks;
  Alcotest.(check bool) "inactive" false (T.active t)

let test_timer_stop_from_own_callback () =
  let e = E.create () in
  let ticks = ref 0 in
  let tr = ref None in
  let t =
    T.every e ~period:1.0 (fun () ->
        incr ticks;
        if !ticks = 2 then T.stop (Option.get !tr))
  in
  tr := Some t;
  E.run ~until:10.0 e;
  Alcotest.(check int) "self-stop works" 2 !ticks

let test_oneshot () =
  let e = E.create () in
  let fired = ref 0 in
  ignore (T.after e ~delay:2.0 (fun () -> incr fired));
  E.run ~until:10.0 e;
  Alcotest.(check int) "exactly once" 1 !fired

let test_watchdog_expires () =
  let e = E.create () in
  let fired = ref [] in
  ignore (T.watchdog e ~timeout:5.0 (fun () -> fired := E.now e :: !fired));
  E.run ~until:20.0 e;
  Alcotest.(check (list (float 0.0))) "fired once at 5" [ 5.0 ] !fired

let test_watchdog_fed () =
  let e = E.create () in
  let fired = ref [] in
  let w = T.watchdog e ~timeout:5.0 (fun () -> fired := E.now e :: !fired) in
  (* Feed at 3 and 6: expiry moves to 11. *)
  ignore (E.schedule e ~delay:3.0 (fun () -> T.feed w));
  ignore (E.schedule e ~delay:6.0 (fun () -> T.feed w));
  E.run ~until:30.0 e;
  Alcotest.(check (list (float 0.0))) "postponed to 11" [ 11.0 ] !fired

let test_watchdog_rearms_after_firing () =
  let e = E.create () in
  let fired = ref [] in
  let w = T.watchdog e ~timeout:5.0 (fun () -> fired := E.now e :: !fired) in
  ignore (E.schedule e ~delay:8.0 (fun () -> T.feed w));
  E.run ~until:30.0 e;
  Alcotest.(check (list (float 0.0))) "fires, then re-armed by feed"
    [ 5.0; 13.0 ] (List.rev !fired)

(* ---- Heap -------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Eventsim.Heap.create ~dummy:0 in
  List.iteri (fun i k -> Eventsim.Heap.push h k i (int_of_float k))
    [ 5.0; 1.0; 3.0; 1.0; 4.0 ];
  let popped = ref [] in
  let rec drain () =
    match Eventsim.Heap.pop h with
    | Some (k, seq, _) ->
        popped := (k, seq) :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (pair (float 0.0) int)))
    "keys ascending, seq breaks ties"
    [ (1.0, 1); (1.0, 3); (3.0, 2); (4.0, 4); (5.0, 0) ]
    (List.rev !popped)

(* Regression: pop and clear used to leave the vacated slots live, so
   the heap kept popped payloads (and whatever their closures
   captured) reachable until the cell was overwritten. *)
let test_heap_releases_payloads () =
  (* The dummy must be a distinct object: it fills vacated slots, so a
     dummy aliasing a payload would keep that payload alive. *)
  let h = Eventsim.Heap.create ~dummy:(ref 0) in
  let w = Weak.create 2 in
  let fill () =
    let a = ref 1 and b = ref 2 in
    Eventsim.Heap.push h 1.0 0 a;
    Eventsim.Heap.push h 2.0 1 b;
    Weak.set w 0 (Some a);
    Weak.set w 1 (Some b)
  in
  fill ();
  ignore (Eventsim.Heap.pop h);
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" true (Weak.get w 0 = None);
  Alcotest.(check bool) "queued payload retained" true (Weak.get w 1 <> None);
  Eventsim.Heap.clear h;
  Gc.full_major ();
  Alcotest.(check bool) "cleared payload collected" true (Weak.get w 1 = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in order" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (float_range 0.0 100.0))
    (fun keys ->
      let h = Eventsim.Heap.create ~dummy:() in
      List.iteri (fun i k -> Eventsim.Heap.push h k i ()) keys;
      let rec drain acc =
        match Eventsim.Heap.pop h with
        | Some (k, _, ()) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* ---- Wheel ------------------------------------------------------- *)

module W = Eventsim.Wheel

(* Entries armed in the same engine instant share one bucket, so a
   single engine event fires them all — the O(1)-events-per-period
   claim, observed through [E.step]. *)
let test_wheel_coalesces () =
  let e = E.create () in
  let w = W.create e in
  let log = ref [] in
  for i = 1 to 3 do
    ignore (W.every w ~period:5.0 (fun () -> log := i :: !log))
  done;
  Alcotest.(check bool) "one event fires the whole bucket" true (E.step e);
  Alcotest.(check (float 0.0)) "at the shared deadline" 5.0 (E.now e);
  Alcotest.(check (list int)) "members fire in insertion order" [ 1; 2; 3 ]
    (List.rev !log)

let test_wheel_matches_timer () =
  let fires run =
    let e = E.create () in
    let log = ref [] in
    run e (fun () -> log := E.now e :: !log);
    E.run ~until:17.0 e;
    List.rev !log
  in
  let wheel =
    fires (fun e f -> ignore (W.every (W.create e) ~start:2.0 ~period:5.0 f))
  in
  let timer =
    fires (fun e f -> ignore (T.every e ~start:2.0 ~period:5.0 f))
  in
  Alcotest.(check (list (float 0.0))) "identical deadline sequence"
    timer wheel;
  Alcotest.(check (list (float 0.0))) "2, then +5 from each fire"
    [ 2.0; 7.0; 12.0; 17.0 ] wheel

let test_wheel_stop () =
  let e = E.create () in
  let w = W.create e in
  let log = ref [] in
  let fires = ref 0 in
  let a = W.every w ~period:5.0 (fun () -> log := "a" :: !log) in
  let rec b_entry =
    lazy
      (W.every w ~period:5.0 (fun () ->
           incr fires;
           log := "b" :: !log;
           if !fires >= 2 then W.stop (Lazy.force b_entry)))
  in
  ignore (Lazy.force b_entry);
  W.stop a;
  Alcotest.(check bool) "stopped entry inactive" false (W.active a);
  E.run ~until:40.0 e;
  Alcotest.(check (list string)) "a never fires; b stops itself after 2"
    [ "b"; "b" ] (List.rev !log);
  Alcotest.(check bool) "self-stopped entry inactive" false
    (W.active (Lazy.force b_entry))

let test_wheel_save_restore () =
  let e = E.create () in
  let w = W.create e in
  let log = ref [] in
  let a = W.every w ~period:5.0 (fun () -> log := ("a", E.now e) :: !log) in
  let es = E.snapshot e in
  let ws = W.save w in
  E.run ~until:12.0 e;
  let first = List.rev !log in
  Alcotest.(check int) "two fires before rewind" 2 (List.length first);
  (* Diverge: kill the saved entry, arm a new one... *)
  W.stop a;
  ignore (W.every w ~period:3.0 (fun () -> log := ("b", E.now e) :: !log));
  (* ...then rewind (engine first, wheel second): the stop is undone,
     the post-save entry is dropped, and the run replays exactly. *)
  E.restore e es;
  W.restore w ws;
  Alcotest.(check bool) "restored entry active again" true (W.active a);
  log := [];
  E.run ~until:12.0 e;
  Alcotest.(check bool) "replay is bit-identical" true
    (List.rev !log = first)

let () =
  Alcotest.run "eventsim"
    [
      ( "engine",
        [
          Alcotest.test_case "zero clock" `Quick test_clock_starts_at_zero;
          Alcotest.test_case "time order" `Quick test_events_fire_in_time_order;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "schedule from callback" `Quick test_schedule_from_callback;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "until inclusive" `Quick test_run_until_inclusive;
          Alcotest.test_case "max events" `Quick test_max_events;
          Alcotest.test_case "past rejected" `Quick test_past_scheduling_rejected;
        ] );
      ( "timer",
        [
          Alcotest.test_case "periodic" `Quick test_periodic_timer;
          Alcotest.test_case "custom start" `Quick test_periodic_with_start;
          Alcotest.test_case "stop" `Quick test_timer_stop;
          Alcotest.test_case "self stop" `Quick test_timer_stop_from_own_callback;
          Alcotest.test_case "oneshot" `Quick test_oneshot;
          Alcotest.test_case "watchdog expires" `Quick test_watchdog_expires;
          Alcotest.test_case "watchdog fed" `Quick test_watchdog_fed;
          Alcotest.test_case "watchdog re-arms" `Quick test_watchdog_rearms_after_firing;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "coalesces same-instant arms" `Quick
            test_wheel_coalesces;
          Alcotest.test_case "matches Timer.every deadlines" `Quick
            test_wheel_matches_timer;
          Alcotest.test_case "stop, also from own action" `Quick
            test_wheel_stop;
          Alcotest.test_case "save/restore rewinds entries" `Quick
            test_wheel_save_restore;
        ] );
      ( "heap",
        Alcotest.test_case "ordering" `Quick test_heap_ordering
        :: Alcotest.test_case "releases payloads" `Quick
             test_heap_releases_payloads
        :: List.map QCheck_alcotest.to_alcotest [ prop_heap_sorts ] );
    ]
