(* Tests for HBH, the paper's contribution: soft-state tables, the
   analytic converged tree (SPT property, no duplication), the
   unicast-cloud constrained variant, and the event-driven Appendix-A
   protocol, including the figure 5 walk-through. *)

module Det = Experiments.Scenarios.Detour
module Dup = Experiments.Scenarios.Duplication

let isp_scenario seed n =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create seed in
  Workload.Scenario.make rng g ~source:Topology.Isp.source
    ~candidates:Topology.Isp.receiver_hosts ~n

(* ---- Tables -------------------------------------------------------------- *)

let dl = { Hbh.Tables.t1 = 10.0; t2 = 25.0 }

let test_mft_lifecycle () =
  let m = Hbh.Tables.Mft.create () in
  ignore (Hbh.Tables.Mft.add_fresh m dl ~now:0.0 5);
  Alcotest.(check bool) "member" true (Hbh.Tables.Mft.mem m 5);
  Alcotest.(check (list int)) "data target" [ 5 ]
    (Hbh.Tables.Mft.data_targets m ~now:1.0);
  Alcotest.(check (list int)) "tree target while fresh" [ 5 ]
    (Hbh.Tables.Mft.tree_targets m ~now:1.0);
  (* After t1 the entry is stale: data yes, trees no. *)
  Alcotest.(check (list int)) "stale: data" [ 5 ]
    (Hbh.Tables.Mft.data_targets m ~now:12.0);
  Alcotest.(check (list int)) "stale: no trees" []
    (Hbh.Tables.Mft.tree_targets m ~now:12.0);
  (* After t2 it is dead. *)
  Hbh.Tables.Mft.expire m ~now:26.0;
  Alcotest.(check bool) "gone" false (Hbh.Tables.Mft.mem m 5)

let test_mft_marked_semantics () =
  let m = Hbh.Tables.Mft.create () in
  ignore (Hbh.Tables.Mft.add_fresh m dl ~now:0.0 5);
  Alcotest.(check bool) "mark succeeds" true (Hbh.Tables.Mft.mark m dl ~now:0.0 5);
  Alcotest.(check (list int)) "marked: no data" []
    (Hbh.Tables.Mft.data_targets m ~now:1.0);
  Alcotest.(check (list int)) "marked: trees flow" [ 5 ]
    (Hbh.Tables.Mft.tree_targets m ~now:1.0);
  Alcotest.(check bool) "mark unknown fails" false (Hbh.Tables.Mft.mark m dl ~now:0.0 9)

let test_mft_refresh_preserves_mark () =
  let m = Hbh.Tables.Mft.create () in
  ignore (Hbh.Tables.Mft.add_fresh m dl ~now:0.0 5);
  ignore (Hbh.Tables.Mft.mark m dl ~now:0.0 5);
  Alcotest.(check bool) "refresh ok" true (Hbh.Tables.Mft.refresh m dl ~now:9.0 5);
  Alcotest.(check (list int)) "still marked" []
    (Hbh.Tables.Mft.data_targets m ~now:9.5);
  Alcotest.(check (list int)) "alive past original t2" [ 5 ]
    (Hbh.Tables.Mft.tree_targets m ~now:18.0);
  (* The mark is itself soft state: unless a later fusion re-asserts
     it, it lapses at its own t1 and data flows again. *)
  Alcotest.(check (list int)) "mark decays at t1" [ 5 ]
    (Hbh.Tables.Mft.data_targets m ~now:10.0);
  ignore (Hbh.Tables.Mft.mark m dl ~now:10.0 5);
  Alcotest.(check (list int)) "re-marked" []
    (Hbh.Tables.Mft.data_targets m ~now:11.0)

let test_mft_fusion_add_stale () =
  let m = Hbh.Tables.Mft.create () in
  let e = Hbh.Tables.Mft.add_stale m dl ~now:0.0 7 in
  Alcotest.(check bool) "born stale" true (Hbh.Tables.entry_stale e ~now:0.0);
  Alcotest.(check (list int)) "stale yet data-forwarding" [ 7 ]
    (Hbh.Tables.Mft.data_targets m ~now:0.0);
  (* Join refresh freshens it; a later fusion must keep it fresh. *)
  ignore (Hbh.Tables.Mft.refresh m dl ~now:1.0 7);
  let e = Hbh.Tables.Mft.add_stale m dl ~now:2.0 7 in
  Alcotest.(check bool) "fusion does not downgrade freshness" false
    (Hbh.Tables.entry_stale e ~now:3.0)

let test_mct_lifecycle () =
  let c = Hbh.Tables.Mct.create dl ~now:0.0 4 in
  Alcotest.(check int) "target" 4 (Hbh.Tables.Mct.target c);
  Alcotest.(check bool) "fresh" false (Hbh.Tables.Mct.stale c ~now:5.0);
  Alcotest.(check bool) "stale after t1" true (Hbh.Tables.Mct.stale c ~now:11.0);
  Alcotest.(check bool) "dead after t2" true (Hbh.Tables.Mct.dead c ~now:26.0);
  Hbh.Tables.Mct.replace c dl ~now:12.0 9;
  Alcotest.(check int) "replaced" 9 (Hbh.Tables.Mct.target c);
  Alcotest.(check bool) "fresh again" false (Hbh.Tables.Mct.stale c ~now:13.0)

let test_tables_sweep () =
  let tb = Hbh.Tables.create () in
  let ch = Mcast.Channel.fresh ~source:0 in
  let m = Hbh.Tables.Mft.create () in
  ignore (Hbh.Tables.Mft.add_fresh m dl ~now:0.0 5);
  Hbh.Tables.set tb ch (Hbh.Tables.Forwarding m);
  Alcotest.(check bool) "branching" true (Hbh.Tables.is_branching tb ch);
  Hbh.Tables.sweep tb ~now:30.0;
  Alcotest.(check bool) "swept away" false (Hbh.Tables.is_branching tb ch);
  Alcotest.(check int) "no entries" 0 (Hbh.Tables.mft_entry_count tb)

(* ---- Analytic -------------------------------------------------------------- *)

let test_shortest_path_property () =
  for seed = 1 to 15 do
    let s = isp_scenario seed 8 in
    let g = Routing.Table.graph s.table in
    let d = Hbh.Analytic.build s.table ~source:s.source ~receivers:s.receivers in
    List.iter
      (fun r ->
        let shortest =
          Routing.Path.delay g (Routing.Table.path s.table s.source r)
        in
        Alcotest.(check (option (float 1e-9)))
          (Printf.sprintf "seed %d receiver %d shortest delay" seed r)
          (Some shortest)
          (Mcast.Distribution.delay d r))
      s.receivers
  done

let test_one_copy_per_link () =
  for seed = 1 to 15 do
    let s = isp_scenario (30 + seed) 12 in
    let d = Hbh.Analytic.build s.table ~source:s.source ~receivers:s.receivers in
    Alcotest.(check int) "stress 1" 1 (Mcast.Distribution.max_stress d);
    Alcotest.(check int) "cost = distinct links" (Mcast.Distribution.links_used d)
      (Mcast.Distribution.cost d)
  done

let test_join_order_independence () =
  let s = isp_scenario 50 8 in
  let d1 = Hbh.Analytic.build s.table ~source:s.source ~receivers:s.receivers in
  let d2 =
    Hbh.Analytic.build s.table ~source:s.source
      ~receivers:(List.rev s.receivers)
  in
  Alcotest.(check bool) "same tree both orders" true
    (Mcast.Distribution.equal_shape d1 d2)

let test_delay_never_above_pim_ss () =
  for seed = 1 to 15 do
    let s = isp_scenario (60 + seed) 10 in
    let hbh = Hbh.Analytic.build s.table ~source:s.source ~receivers:s.receivers in
    let ss = Pim.Pim_ss.build s.table ~source:s.source ~receivers:s.receivers in
    List.iter
      (fun r ->
        let dh = Option.get (Mcast.Distribution.delay hbh r) in
        let ds = Option.get (Mcast.Distribution.delay ss r) in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d receiver %d" seed r)
          true (dh <= ds +. 1e-9))
      s.receivers
  done

let test_no_duplication_in_fig3 () =
  Alcotest.(check int) "one copy on the shared link" 1
    (Dup.hbh_copies_on_shared_link ());
  Alcotest.(check int) "HBH cost 6" 6 (Dup.hbh_cost ())

let test_branching_nodes () =
  let tbl = Dup.table () in
  let nodes =
    Hbh.Analytic.branching_nodes tbl ~source:Dup.source
      ~receivers:[ Dup.r1; Dup.r2 ]
  in
  (* The two flows diverge at R6 (node 6) only. *)
  Alcotest.(check (list int)) "divergence at R6" [ 6 ] nodes

let test_analytic_state () =
  let tbl = Dup.table () in
  let st =
    Hbh.Analytic.state tbl ~source:Dup.source ~receivers:[ Dup.r1; Dup.r2 ]
  in
  Alcotest.(check int) "one branching router" 1 st.Mcast.Metrics.branching_routers;
  Alcotest.(check int) "two forwarding entries at it" 2 st.mft_entries;
  Alcotest.(check bool) "control elsewhere" true (st.mct_entries >= 1)

let test_constrained_equals_ideal_when_all_capable () =
  for seed = 1 to 10 do
    let s = isp_scenario (80 + seed) 10 in
    let a = Hbh.Analytic.build s.table ~source:s.source ~receivers:s.receivers in
    let b =
      Hbh.Analytic.build_constrained s.table ~source:s.source
        ~receivers:s.receivers
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d identical" seed)
      true
      (Mcast.Distribution.equal_shape a b)
  done

let test_constrained_duplicates_at_incapable_divergence () =
  let tbl = Dup.table () in
  let g = Routing.Table.graph tbl in
  (* Make the unique branching point (R6) unicast-only: copies must
     now be created upstream, loading the shared segment twice. *)
  Topology.Graph.set_multicast_capable g 6 false;
  let tbl = Routing.Table.compute g in
  let d =
    Hbh.Analytic.build_constrained tbl ~source:Dup.source
      ~receivers:[ Dup.r1; Dup.r2 ]
  in
  let u, v = Dup.shared_link in
  Alcotest.(check int) "two copies through the unicast cloud" 2
    (Mcast.Distribution.copies d u v);
  (* Delays unchanged: still shortest paths. *)
  Alcotest.(check (option (float 0.0))) "r1 delay" (Some 4.0)
    (Mcast.Distribution.delay d Dup.r1);
  Topology.Graph.set_multicast_capable g 6 true

let test_constrained_cost_monotone_in_capability () =
  let s = isp_scenario 90 10 in
  let g = Routing.Table.graph s.table in
  let full =
    Mcast.Distribution.cost
      (Hbh.Analytic.build_constrained s.table ~source:s.source
         ~receivers:s.receivers)
  in
  List.iter (fun r -> Topology.Graph.set_multicast_capable g r false)
    (Topology.Graph.routers g);
  let none =
    Mcast.Distribution.cost
      (Hbh.Analytic.build_constrained s.table ~source:s.source
         ~receivers:s.receivers)
  in
  List.iter (fun r -> Topology.Graph.set_multicast_capable g r true)
    (Topology.Graph.routers g);
  Alcotest.(check bool) "no capability costs at least as much" true (none >= full)

(* ---- Event-driven protocol --------------------------------------------------- *)

let test_event_converges_on_detour () =
  let tbl = Det.table () in
  let session = Hbh.Protocol.create tbl ~source:Det.source in
  Hbh.Protocol.subscribe session Det.r1;
  Hbh.Protocol.subscribe session Det.r2;
  Hbh.Protocol.converge session;
  let d = Hbh.Protocol.probe session in
  let a = Hbh.Analytic.build tbl ~source:Det.source ~receivers:[ Det.r1; Det.r2 ] in
  Alcotest.(check bool) "event = analytic" true (Mcast.Distribution.equal_shape d a);
  Alcotest.(check (option (float 0.0))) "r2 served on shortest path" (Some 2.0)
    (Mcast.Distribution.delay d Det.r2)

let test_event_fig5_third_receiver () =
  (* The figure 5 walk-through: r3 joins after r1/r2; fusion moves the
     branch to H3 and everyone still gets shortest-path delivery. *)
  let tbl = Det.table () in
  let session = Hbh.Protocol.create tbl ~source:Det.source in
  Hbh.Protocol.subscribe session Det.r1;
  Hbh.Protocol.subscribe session Det.r2;
  Hbh.Protocol.converge session;
  Hbh.Protocol.subscribe session Det.r3;
  Hbh.Protocol.converge session;
  let d = Hbh.Protocol.probe session in
  let a =
    Hbh.Analytic.build tbl ~source:Det.source
      ~receivers:[ Det.r1; Det.r2; Det.r3 ]
  in
  Alcotest.(check bool) "converged to ideal" true (Mcast.Distribution.equal_shape d a);
  (* r1 and r3 share S->R1->R3; the branching node R3 (id 3) holds
     forwarding state. *)
  Alcotest.(check bool) "R3 is branching" true
    (List.mem 3 (Hbh.Protocol.branching_routers session))

let test_event_fusion_resolves_fig3 () =
  let tbl = Dup.table () in
  let session = Hbh.Protocol.create tbl ~source:Dup.source in
  Hbh.Protocol.subscribe session Dup.r1;
  Hbh.Protocol.subscribe session Dup.r2;
  Hbh.Protocol.converge session;
  let d = Hbh.Protocol.probe session in
  let u, v = Dup.shared_link in
  Alcotest.(check int) "single copy after fusion" 1 (Mcast.Distribution.copies d u v);
  Alcotest.(check int) "cost 6" 6 (Mcast.Distribution.cost d)

let test_event_random_isp_convergence () =
  for seed = 1 to 6 do
    let s = isp_scenario (700 + seed) ((2 * seed) + 2) in
    let session = Hbh.Protocol.create s.table ~source:s.source in
    List.iter (Hbh.Protocol.subscribe session) s.receivers;
    Hbh.Protocol.converge ~periods:20 session;
    let d = Hbh.Protocol.probe session in
    let a = Hbh.Analytic.build s.table ~source:s.source ~receivers:s.receivers in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d exact convergence" seed)
      true
      (Mcast.Distribution.equal_shape d a)
  done

let test_event_departure_prunes_branch () =
  let tbl = Det.table () in
  let session = Hbh.Protocol.create tbl ~source:Det.source in
  Hbh.Protocol.subscribe session Det.r1;
  Hbh.Protocol.subscribe session Det.r2;
  Hbh.Protocol.converge session;
  let before = Hbh.Protocol.probe session in
  Hbh.Protocol.unsubscribe session Det.r2;
  Hbh.Protocol.run_for session 2000.0;
  let after = Hbh.Protocol.probe session in
  Alcotest.(check (list int)) "r1 remains" [ Det.r1 ]
    (Mcast.Distribution.receivers after);
  (* Stability: r1's delay must not change when r2 leaves. *)
  Alcotest.(check (option (float 0.0))) "r1 delay unchanged"
    (Mcast.Distribution.delay before Det.r1)
    (Mcast.Distribution.delay after Det.r1)

let test_event_full_depletion () =
  let tbl = Det.table () in
  let session = Hbh.Protocol.create tbl ~source:Det.source in
  Hbh.Protocol.subscribe session Det.r1;
  Hbh.Protocol.subscribe session Det.r2;
  Hbh.Protocol.converge session;
  Hbh.Protocol.unsubscribe session Det.r1;
  Hbh.Protocol.unsubscribe session Det.r2;
  Hbh.Protocol.run_for session 3000.0;
  let st = Hbh.Protocol.state session in
  Alcotest.(check int) "all state drained" 0
    (st.Mcast.Metrics.mft_entries + st.mct_entries)

let test_event_rejoin_after_silence () =
  (* A receiver whose state is wiped re-joins through the first-join
     rule (liveness safety valve). *)
  let tbl = Det.table () in
  let session = Hbh.Protocol.create tbl ~source:Det.source in
  Hbh.Protocol.subscribe session Det.r1;
  Hbh.Protocol.converge ~periods:30 session;
  let d = Hbh.Protocol.probe session in
  Alcotest.(check (list int)) "still served after long run" [ Det.r1 ]
    (Mcast.Distribution.receivers d)

let test_event_unicast_cloud_transparent () =
  (* Disable the branching router: HBH must still deliver (copies made
     upstream), demonstrating the incremental-deployment property. *)
  let g = Dup.graph () in
  Topology.Graph.set_multicast_capable g 6 false;
  let tbl = Routing.Table.compute g in
  let session = Hbh.Protocol.create tbl ~source:Dup.source in
  Hbh.Protocol.subscribe session Dup.r1;
  Hbh.Protocol.subscribe session Dup.r2;
  Hbh.Protocol.converge ~periods:20 session;
  let d = Hbh.Protocol.probe session in
  Alcotest.(check (list int)) "both served through the cloud"
    [ Dup.r1; Dup.r2 ]
    (Mcast.Distribution.receivers d);
  let u, v = Dup.shared_link in
  Alcotest.(check int) "upstream duplication" 2 (Mcast.Distribution.copies d u v)

let test_event_two_channels_share_network () =
  (* Two sources multicast concurrently over one network (the EXPRESS
     M-to-N model as M channels); each converges to its own ideal tree
     without disturbing the other. *)
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 77 in
  Workload.Scenario.randomize rng g;
  let tbl = Routing.Table.compute g in
  let a = Hbh.Protocol.create tbl ~source:18 in
  let b = Hbh.Protocol.create_on (Hbh.Protocol.network a) ~source:27 in
  let recv_a = [ 20; 25; 30 ] and recv_b = [ 21; 25; 33 ] in
  List.iter (Hbh.Protocol.subscribe a) recv_a;
  List.iter (Hbh.Protocol.subscribe b) recv_b;
  Hbh.Protocol.converge ~periods:20 a;
  (* One shared engine: converging [a] converged [b] too. *)
  let da = Hbh.Protocol.probe a in
  Alcotest.(check bool) "channel A ideal" true
    (Mcast.Distribution.equal_shape da
       (Hbh.Analytic.build tbl ~source:18 ~receivers:recv_a));
  let db = Hbh.Protocol.probe b in
  Alcotest.(check bool) "channel B ideal" true
    (Mcast.Distribution.equal_shape db
       (Hbh.Analytic.build tbl ~source:27 ~receivers:recv_b));
  (* The shared receiver 25 is served by both channels. *)
  Alcotest.(check bool) "25 in both" true
    (List.mem 25 (Mcast.Distribution.receivers da)
    && List.mem 25 (Mcast.Distribution.receivers db))

let test_event_subscribe_validation () =
  let tbl = Det.table () in
  let session = Hbh.Protocol.create tbl ~source:Det.source in
  Alcotest.(check bool) "source cannot subscribe" true
    (try
       Hbh.Protocol.subscribe session Det.source;
       false
     with Invalid_argument _ -> true);
  Hbh.Protocol.subscribe session Det.r1;
  Hbh.Protocol.subscribe session Det.r1;
  Alcotest.(check (list int)) "idempotent" [ Det.r1 ] (Hbh.Protocol.members session)

let test_event_config_validation () =
  let tbl = Det.table () in
  Alcotest.(check bool) "t2 <= t1 rejected" true
    (try
       ignore
         (Hbh.Protocol.create
            ~config:{ Hbh.Protocol.default_config with t1 = 5.0; t2 = 4.0 }
            tbl ~source:Det.source);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "hbh"
    [
      ( "tables",
        [
          Alcotest.test_case "mft lifecycle" `Quick test_mft_lifecycle;
          Alcotest.test_case "marked semantics" `Quick test_mft_marked_semantics;
          Alcotest.test_case "refresh keeps mark" `Quick test_mft_refresh_preserves_mark;
          Alcotest.test_case "fusion add_stale" `Quick test_mft_fusion_add_stale;
          Alcotest.test_case "mct lifecycle" `Quick test_mct_lifecycle;
          Alcotest.test_case "sweep" `Quick test_tables_sweep;
        ] );
      ( "analytic",
        [
          Alcotest.test_case "shortest-path delays" `Quick test_shortest_path_property;
          Alcotest.test_case "one copy per link" `Quick test_one_copy_per_link;
          Alcotest.test_case "join-order independent" `Quick test_join_order_independence;
          Alcotest.test_case "beats PIM-SS delay" `Quick test_delay_never_above_pim_ss;
          Alcotest.test_case "fig 3 resolved" `Quick test_no_duplication_in_fig3;
          Alcotest.test_case "branching nodes" `Quick test_branching_nodes;
          Alcotest.test_case "state" `Quick test_analytic_state;
        ] );
      ( "constrained",
        [
          Alcotest.test_case "equals ideal when capable" `Quick
            test_constrained_equals_ideal_when_all_capable;
          Alcotest.test_case "incapable divergence duplicates" `Quick
            test_constrained_duplicates_at_incapable_divergence;
          Alcotest.test_case "cost monotone" `Quick test_constrained_cost_monotone_in_capability;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "detour convergence" `Quick test_event_converges_on_detour;
          Alcotest.test_case "fig 5 third receiver" `Quick test_event_fig5_third_receiver;
          Alcotest.test_case "fig 3 fusion" `Quick test_event_fusion_resolves_fig3;
          Alcotest.test_case "random ISP convergence" `Quick test_event_random_isp_convergence;
          Alcotest.test_case "departure prunes" `Quick test_event_departure_prunes_branch;
          Alcotest.test_case "full depletion" `Quick test_event_full_depletion;
          Alcotest.test_case "long-run liveness" `Quick test_event_rejoin_after_silence;
          Alcotest.test_case "unicast cloud" `Quick test_event_unicast_cloud_transparent;
          Alcotest.test_case "two channels, one network" `Quick
            test_event_two_channels_share_network;
          Alcotest.test_case "subscribe validation" `Quick test_event_subscribe_validation;
          Alcotest.test_case "config validation" `Quick test_event_config_validation;
        ] );
    ]
