(* Tests for the packet-level network simulator: hop-by-hop delivery,
   handler interception, accounting, TTL, sinks and traces. *)

module G = Topology.Graph
module Net = Netsim.Network
module Pkt = Netsim.Packet

type payload = Ping | Probe of int

let line_network () =
  (* 0 - 1 - 2 - 3 with distinct directed delays. *)
  let g =
    G.make
      ~kinds:(Array.make 4 G.Router)
      ~links:[ (0, 1, 2, 5); (1, 2, 3, 5); (2, 3, 4, 5) ]
  in
  let table = Routing.Table.compute g in
  let engine = Eventsim.Engine.create () in
  (engine, Net.create engine table)

let test_delivery_and_delay () =
  let engine, net = line_network () in
  let got = ref None in
  Net.install net 3 (fun _ node p ->
      if p.Pkt.dst = node then begin
        got := Some (Eventsim.Engine.now engine -. p.Pkt.born);
        Net.Consume
      end
      else Net.Forward);
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check (option (float 0.0))) "sum of directed delays" (Some 9.0) !got

let test_reverse_direction_delay () =
  let engine, net = line_network () in
  let got = ref None in
  Net.install net 0 (fun _ node p ->
      if p.Pkt.dst = node then begin
        got := Some (Eventsim.Engine.now engine -. p.Pkt.born);
        Net.Consume
      end
      else Net.Forward);
  Net.originate net ~src:3 ~dst:0 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check (option (float 0.0))) "reverse costs differ" (Some 15.0) !got

let test_handler_sees_transit () =
  let engine, net = line_network () in
  let seen = ref [] in
  List.iter
    (fun n ->
      Net.install net n (fun _ node _ ->
          seen := node :: !seen;
          Net.Forward))
    [ 1; 2 ];
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check (list int)) "every hop inspected" [ 1; 2 ] (List.rev !seen)

let test_consume_stops_forwarding () =
  let engine, net = line_network () in
  let reached_3 = ref false in
  Net.install net 1 (fun _ _ _ -> Net.Consume);
  Net.install net 3 (fun _ _ _ ->
      reached_3 := true;
      Net.Consume);
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check bool) "intercepted at 1" false !reached_3;
  Alcotest.(check int) "consumed counter" 1 (Net.counters net).Net.consumed

let test_data_accounting () =
  let engine, net = line_network () in
  Net.set_sink net 3 true;
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Data (Probe 1);
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Data (Probe 2);
  Eventsim.Engine.run engine;
  Alcotest.(check (list (pair (pair int int) int)))
    "two copies per link"
    [ ((0, 1), 2); ((1, 2), 2); ((2, 3), 2) ]
    (Net.data_link_loads net);
  Alcotest.(check int) "two deliveries" 2 (List.length (Net.data_deliveries net));
  Net.reset_data_accounting net;
  Alcotest.(check int) "reset clears" 0 (List.length (Net.data_link_loads net))

let test_control_not_in_data_loads () =
  let engine, net = line_network () in
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check int) "no data loads" 0 (List.length (Net.data_link_loads net));
  Alcotest.(check int) "control hops counted" 3 (Net.counters net).Net.control_hops

let test_sink_gates_delivery_recording () =
  let engine, net = line_network () in
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Data (Probe 1);
  Eventsim.Engine.run engine;
  Alcotest.(check int) "router without sink: no delivery" 0
    (List.length (Net.data_deliveries net));
  Net.set_sink net 3 true;
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Data (Probe 2);
  Eventsim.Engine.run engine;
  Alcotest.(check int) "sink records" 1 (List.length (Net.data_deliveries net))

let test_host_is_implicit_sink () =
  let b = Topology.Builder.create () in
  let r0 = Topology.Builder.add_router b in
  let r1 = Topology.Builder.add_router b in
  Topology.Builder.add_link b r0 r1 ();
  let h = Topology.Builder.add_host b ~router:r1 () in
  let g = Topology.Builder.build b in
  let table = Routing.Table.compute g in
  let engine = Eventsim.Engine.create () in
  let net = Net.create engine table in
  Net.originate net ~src:r0 ~dst:h ~kind:Pkt.Data (Probe 1);
  Eventsim.Engine.run engine;
  Alcotest.(check int) "host delivery recorded" 1
    (List.length (Net.data_deliveries net))

let test_ttl_expiry () =
  let g =
    G.make
      ~kinds:(Array.make 4 G.Router)
      ~links:[ (0, 1, 1, 1); (1, 2, 1, 1); (2, 3, 1, 1) ]
  in
  let tbl = Routing.Table.compute g in
  let eng = Eventsim.Engine.create () in
  let nt = Net.create ~default_ttl:1 eng tbl in
  Net.originate nt ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run eng;
  Alcotest.(check int) "dropped by ttl" 1 (Net.counters nt).Net.dropped_ttl

let test_unreachable_drop () =
  let g =
    G.make ~kinds:(Array.make 3 G.Router) ~links:[ (0, 1, 1, 1) ]
  in
  let tbl = Routing.Table.compute g in
  let eng = Eventsim.Engine.create () in
  let net = Net.create eng tbl in
  Net.originate net ~src:0 ~dst:2 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run eng;
  Alcotest.(check int) "unreachable counted" 1
    (Net.counters net).Net.dropped_unreachable

(* ---- Fault injection -------------------------------------------------- *)

let test_bernoulli_loss_drop () =
  let engine, net = line_network () in
  Net.set_fault_rng net (Stats.Rng.create 11);
  Net.set_loss net ~u:1 ~v:2 1.0;
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  let c = Net.counters net in
  Alcotest.(check int) "lost on the wire" 1 c.Net.dropped_loss;
  (* Rate 0 removes the entry and traffic flows again. *)
  Net.set_loss net ~u:1 ~v:2 0.0;
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check int) "no further losses" 1 (Net.counters net).Net.dropped_loss

let test_link_down_drop () =
  let engine, net = line_network () in
  Net.set_link_up net 1 2 false;
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check int) "dead link counted" 1
    (Net.counters net).Net.dropped_link_down

let test_node_down_drop_and_events () =
  let engine, net = line_network () in
  let transitions = ref [] in
  Net.on_node_event net (fun ~up n -> transitions := (up, n) :: !transitions);
  Net.set_node_up net 2 false;
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check int) "crashed node drops traffic" 1
    (Net.counters net).Net.dropped_node_down;
  Net.set_node_up net 2 true;
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check int) "restart restores forwarding" 1
    (Net.counters net).Net.dropped_node_down;
  Alcotest.(check (list (pair bool int)))
    "crash then restart observed" [ (false, 2); (true, 2) ]
    (List.rev !transitions)

let test_drop_filter () =
  let engine, net = line_network () in
  Net.set_drop_filter net (Some (fun p -> p.Pkt.kind = Pkt.Control));
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check int) "suppressed before the wire" 1
    (Net.counters net).Net.dropped_filtered;
  Net.set_drop_filter net None;
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check int) "filter removal restores flow" 1
    (Net.counters net).Net.dropped_filtered

let test_self_addressed_loopback () =
  let engine, net = line_network () in
  let got = ref false in
  Net.install net 0 (fun _ node p ->
      if p.Pkt.dst = node then got := true;
      Net.Consume);
  Net.originate net ~src:0 ~dst:0 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check bool) "handler sees own packet" true !got

let test_rewrite_preserves_born () =
  let engine, net = line_network () in
  let end_delay = ref None in
  (* Node 2 rewrites data addressed to it toward 3, as a branching
     router would; delivery delay must span the whole trip. *)
  Net.install net 2 (fun nt node p ->
      if p.Pkt.dst = node then begin
        Net.emit nt ~at:node (Pkt.rewrite p ~src:node ~dst:3 ());
        Net.Consume
      end
      else Net.Forward);
  Net.install net 3 (fun _ node p ->
      if p.Pkt.dst = node then begin
        end_delay := Some (Eventsim.Engine.now engine -. p.Pkt.born);
        Net.Consume
      end
      else Net.Forward);
  Net.originate net ~src:0 ~dst:2 ~kind:Pkt.Data (Probe 9);
  Eventsim.Engine.run engine;
  Alcotest.(check (option (float 0.0))) "cumulative delay" (Some 9.0) !end_delay

let test_via_tracks_last_hop () =
  let engine, net = line_network () in
  let vias = ref [] in
  List.iter
    (fun n ->
      Net.install net n (fun _ _ p ->
          vias := p.Pkt.via :: !vias;
          Net.Forward))
    [ 1; 2; 3 ];
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Eventsim.Engine.run engine;
  Alcotest.(check (list int)) "previous hop at each arrival" [ 0; 1; 2 ]
    (List.rev !vias)

let test_chain_handlers () =
  let engine, net = line_network () in
  let seen = ref [] in
  Net.install net 1 (fun _ _ p ->
      match p.Pkt.payload with
      | Ping ->
          seen := "first" :: !seen;
          Net.Consume
      | Probe _ -> Net.Forward);
  Net.chain net 1 (fun _ _ p ->
      match p.Pkt.payload with
      | Probe _ ->
          seen := "second" :: !seen;
          Net.Consume
      | Ping -> Net.Forward);
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control Ping;
  Net.originate net ~src:0 ~dst:3 ~kind:Pkt.Control (Probe 1);
  Eventsim.Engine.run engine;
  Alcotest.(check (list string)) "each handler claims its own traffic"
    [ "first"; "second" ] (List.rev !seen)

let test_trace_capacity () =
  let tr = Obs.Trace.create ~enabled:true ~capacity:3 () in
  for i = 1 to 5 do
    Obs.Trace.note tr ~time:(float_of_int i) ~node:0 (string_of_int i)
  done;
  Alcotest.(check int) "bounded" 3 (Obs.Trace.length tr);
  let first_summary =
    match Obs.Trace.events tr with
    | (e : Obs.Event.t) :: _ -> Obs.Event.summary e.kind
    | [] -> ""
  in
  Alcotest.(check string) "oldest dropped" "3" first_summary

let test_trace_disabled_is_free () =
  let tr = Obs.Trace.create () in
  Obs.Trace.note tr ~time:1.0 ~node:0 "x";
  Alcotest.(check int) "nothing recorded" 0 (Obs.Trace.length tr)

let () =
  Alcotest.run "netsim"
    [
      ( "forwarding",
        [
          Alcotest.test_case "delivery and delay" `Quick test_delivery_and_delay;
          Alcotest.test_case "reverse delay differs" `Quick test_reverse_direction_delay;
          Alcotest.test_case "transit inspection" `Quick test_handler_sees_transit;
          Alcotest.test_case "consume stops" `Quick test_consume_stops_forwarding;
          Alcotest.test_case "self-addressed loopback" `Quick test_self_addressed_loopback;
          Alcotest.test_case "rewrite preserves born" `Quick test_rewrite_preserves_born;
          Alcotest.test_case "via tracks last hop" `Quick test_via_tracks_last_hop;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "data loads and deliveries" `Quick test_data_accounting;
          Alcotest.test_case "control not counted as data" `Quick
            test_control_not_in_data_loads;
          Alcotest.test_case "sink gating" `Quick test_sink_gates_delivery_recording;
          Alcotest.test_case "host implicit sink" `Quick test_host_is_implicit_sink;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
          Alcotest.test_case "unreachable" `Quick test_unreachable_drop;
        ] );
      ( "faults",
        [
          Alcotest.test_case "bernoulli loss" `Quick test_bernoulli_loss_drop;
          Alcotest.test_case "link down" `Quick test_link_down_drop;
          Alcotest.test_case "node crash/restart" `Quick
            test_node_down_drop_and_events;
          Alcotest.test_case "drop filter" `Quick test_drop_filter;
        ] );
      ( "chaining",
        [ Alcotest.test_case "handlers compose" `Quick test_chain_handlers ] );
      ( "trace",
        [
          Alcotest.test_case "capacity bound" `Quick test_trace_capacity;
          Alcotest.test_case "disabled free" `Quick test_trace_disabled_is_free;
        ] );
    ]
