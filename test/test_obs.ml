(* Tests for the telemetry subsystem: ring-buffer eviction, metric
   instrument semantics, JSON round-trips, the lazy-formatting trace,
   and an end-to-end assertion that an ISP-scenario HBH run reports
   into the default registry and trace. *)

(* ---- Ring buffer ------------------------------------------------------- *)

let test_ring_eviction () =
  let r = Obs.Ring.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Obs.Ring.capacity r);
  List.iter (Obs.Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length capped" 3 (Obs.Ring.length r);
  Alcotest.(check (list int)) "oldest evicted first" [ 3; 4; 5 ]
    (Obs.Ring.to_list r);
  Alcotest.(check (list int)) "last n, oldest-of-them first" [ 4; 5 ]
    (Obs.Ring.last r 2);
  Alcotest.(check (list int)) "last over-asks clamps" [ 3; 4; 5 ]
    (Obs.Ring.last r 10);
  Alcotest.(check int) "fold sees survivors" 12
    (Obs.Ring.fold (fun acc x -> acc + x) 0 r);
  Obs.Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Obs.Ring.length r);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

let test_ring_partial () =
  let r = Obs.Ring.create ~capacity:4 in
  Obs.Ring.push r "a";
  Obs.Ring.push r "b";
  Alcotest.(check (list string)) "unfilled keeps all" [ "a"; "b" ]
    (Obs.Ring.to_list r)

(* Truncation is accounted, not silent: evictions are counted and the
   high-water mark proves (or disproves) that the bound ever bit. *)
let test_ring_truncation_accounting () =
  let r = Obs.Ring.create ~capacity:3 in
  Obs.Ring.push r 1;
  Obs.Ring.push r 2;
  Alcotest.(check int) "no drops while unfilled" 0 (Obs.Ring.dropped r);
  Alcotest.(check int) "high water tracks length" 2 (Obs.Ring.high_water r);
  List.iter (Obs.Ring.push r) [ 3; 4; 5 ];
  Alcotest.(check int) "two oldest evicted" 2 (Obs.Ring.dropped r);
  Alcotest.(check int) "high water pegged at capacity" 3 (Obs.Ring.high_water r);
  Alcotest.(check (list int)) "survivors unchanged" [ 3; 4; 5 ]
    (Obs.Ring.to_list r);
  Obs.Ring.clear r;
  Alcotest.(check int) "clear resets dropped" 0 (Obs.Ring.dropped r);
  Alcotest.(check int) "clear resets high water" 0 (Obs.Ring.high_water r)

(* ---- Metrics instruments ----------------------------------------------- *)

let test_counter_semantics () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "x.count" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Metrics.value c);
  (* Interning: same name returns the same instrument. *)
  let c' = Obs.Metrics.counter reg "x.count" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "interned by name" 43 (Obs.Metrics.value c);
  Obs.Metrics.reset reg;
  Alcotest.(check int) "reset zeroes, reference stays live" 0
    (Obs.Metrics.value c)

let test_gauge_semantics () =
  let reg = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge reg "x.level" in
  Alcotest.(check bool) "nan until set" true
    (Float.is_nan (Obs.Metrics.gauge_value g));
  Obs.Metrics.set g 2.5;
  Obs.Metrics.set g 7.0;
  Alcotest.(check (float 0.0)) "last value wins" 7.0
    (Obs.Metrics.gauge_value g)

(* Regression: a NaN observation used to land in the first bucket (it
   compares false against every bound) and poison sum/min/max for the
   histogram's remaining lifetime; later it was counted in [count],
   which still diluted the mean and shifted quantile ranks.  NaNs now
   live in their own tally, invisible to every moment. *)
let test_histogram_nan_quarantined () =
  let h = Obs.Histo.create ~buckets:[| 1.0; 10.0 |] () in
  Obs.Histo.observe h nan;
  Obs.Histo.observe h 0.5;
  Obs.Histo.observe h nan;
  let s = Obs.Histo.snapshot h in
  Alcotest.(check int) "finite observations counted" 1 s.Obs.Histo.count;
  Alcotest.(check int) "NaNs quarantined in their own tally" 2 s.Obs.Histo.nans;
  Alcotest.(check int) "overflow holds no NaNs" 0 s.Obs.Histo.overflow;
  Alcotest.(check (list (pair (float 0.0) int)))
    "finite sample in its bucket"
    [ (1.0, 1); (10.0, 0) ]
    s.Obs.Histo.buckets;
  Alcotest.(check (float 1e-9)) "sum unpoisoned" 0.5 s.Obs.Histo.sum;
  Alcotest.(check (float 0.0)) "min unpoisoned" 0.5 s.Obs.Histo.min;
  Alcotest.(check (float 0.0)) "max unpoisoned" 0.5 s.Obs.Histo.max;
  Alcotest.(check (float 1e-9)) "mean over finite samples only" 0.5
    (Obs.Histo.mean h);
  Alcotest.(check (float 0.0)) "p50 undiluted by NaNs" 0.5
    (Obs.Histo.quantile s 0.50)

let test_histogram_semantics () =
  let h = Obs.Histo.create ~buckets:[| 1.0; 10.0; 100.0 |] () in
  List.iter (Obs.Histo.observe h) [ 0.5; 5.0; 5.0; 50.0; 5000.0 ];
  Alcotest.(check int) "count" 5 (Obs.Histo.count h);
  Alcotest.(check (float 1e-9)) "sum" 5060.5 (Obs.Histo.sum h);
  let s = Obs.Histo.snapshot h in
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket counts"
    [ (1.0, 1); (10.0, 2); (100.0, 1) ]
    s.Obs.Histo.buckets;
  Alcotest.(check int) "overflow" 1 s.Obs.Histo.overflow;
  Alcotest.(check (float 0.0)) "min" 0.5 s.Obs.Histo.min;
  Alcotest.(check (float 0.0)) "max" 5000.0 s.Obs.Histo.max;
  Obs.Histo.reset h;
  Alcotest.(check int) "reset" 0 (Obs.Histo.count h)

(* A histogram's summary interpolates quantiles from its buckets:
   with 100 uniform samples over (0, 100] and bounds every 10, the
   estimates must land within one bucket width of the exact ranks. *)
let test_histogram_quantiles () =
  let h =
    Obs.Histo.create ~buckets:(Array.init 10 (fun i -> float_of_int ((i + 1) * 10))) ()
  in
  for i = 1 to 100 do
    Obs.Histo.observe h (float_of_int i)
  done;
  let s = Obs.Histo.summary (Obs.Histo.snapshot h) in
  Alcotest.(check int) "count" 100 s.Obs.Histo.s_count;
  Alcotest.(check (float 10.0)) "p50 near 50" 50.0 s.Obs.Histo.p50;
  Alcotest.(check (float 10.0)) "p95 near 95" 95.0 s.Obs.Histo.p95;
  Alcotest.(check (float 10.0)) "p99 near 99" 99.0 s.Obs.Histo.p99;
  Alcotest.(check bool) "quantiles ordered" true
    (s.Obs.Histo.p50 <= s.Obs.Histo.p95 && s.Obs.Histo.p95 <= s.Obs.Histo.p99);
  Alcotest.(check bool) "clamped to observed range" true
    (s.Obs.Histo.p99 <= s.Obs.Histo.s_max)

(* Degenerate histograms must yield well-defined quantiles — not NaN
   or interpolation garbage: empty -> 0, a single observation (or any
   min = max collapse) -> that value. *)
let test_histogram_quantile_edges () =
  let empty = Obs.Histo.snapshot (Obs.Histo.create ~buckets:[| 1.0; 10.0 |] ()) in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "empty p%.0f is 0" (q *. 100.))
        0.0
        (Obs.Histo.quantile empty q))
    [ 0.5; 0.95; 0.99 ];
  let h = Obs.Histo.create ~buckets:[| 1.0; 10.0 |] () in
  Obs.Histo.observe h 7.25;
  let s = Obs.Histo.snapshot h in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single observation p%.0f is the value" (q *. 100.))
        7.25
        (Obs.Histo.quantile s q))
    [ 0.5; 0.95; 0.99 ];
  Alcotest.(check bool) "NaN rank propagates NaN" true
    (Float.is_nan (Obs.Histo.quantile s nan))

let test_histogram_merge () =
  let bounds = [| 1.0; 10.0; 100.0 |] in
  let a = Obs.Histo.create ~buckets:bounds () in
  let b = Obs.Histo.create ~buckets:bounds () in
  List.iter (Obs.Histo.observe a) [ 0.5; 5.0; nan ];
  List.iter (Obs.Histo.observe b) [ 50.0; 5000.0 ];
  Obs.Histo.merge a b;
  let s = Obs.Histo.snapshot a in
  Alcotest.(check int) "counts sum (finite only)" 4 s.Obs.Histo.count;
  Alcotest.(check int) "nans sum" 1 s.Obs.Histo.nans;
  Alcotest.(check (list (pair (float 0.0) int)))
    "buckets sum bucket-wise"
    [ (1.0, 1); (10.0, 1); (100.0, 1) ]
    s.Obs.Histo.buckets;
  Alcotest.(check int) "overflow sums" 1 s.Obs.Histo.overflow;
  Alcotest.(check (float 1e-9)) "sum adds" 5055.5 s.Obs.Histo.sum;
  Alcotest.(check (float 0.0)) "min is the joint min" 0.5 s.Obs.Histo.min;
  Alcotest.(check (float 0.0)) "max is the joint max" 5000.0 s.Obs.Histo.max;
  Alcotest.(check bool) "post-merge quantile is finite" true
    (Float.is_finite (Obs.Histo.quantile s 0.95));
  (* Merging an empty histogram must not poison min/max with its NaN
     sentinels. *)
  let c = Obs.Histo.create ~buckets:bounds () in
  Obs.Histo.merge a c;
  let s = Obs.Histo.snapshot a in
  Alcotest.(check (float 0.0)) "empty merge keeps min" 0.5 s.Obs.Histo.min;
  Alcotest.(check (float 0.0)) "empty merge keeps max" 5000.0 s.Obs.Histo.max;
  (* And merging INTO a fresh histogram adopts the source's extrema. *)
  let d = Obs.Histo.create ~buckets:bounds () in
  Obs.Histo.merge d a;
  let s = Obs.Histo.snapshot d in
  Alcotest.(check (float 0.0)) "fresh dst adopts min" 0.5 s.Obs.Histo.min;
  Alcotest.(check (float 0.0)) "fresh dst adopts max" 5000.0 s.Obs.Histo.max;
  match Obs.Histo.merge a (Obs.Histo.create ~buckets:[| 2.0 |] ()) with
  | () -> Alcotest.fail "bucket-bounds mismatch must be rejected"
  | exception Invalid_argument _ -> ()

(* ---- Labeled series ----------------------------------------------------- *)

let test_labels_canonical () =
  (* Construction order never distinguishes two series. *)
  let reg = Obs.Metrics.create () in
  let ab = Obs.Labels.v [ ("a", "1"); ("b", "2") ] in
  let ba = Obs.Labels.v [ ("b", "2"); ("a", "1") ] in
  Alcotest.(check bool) "order-insensitive equality" true (Obs.Labels.equal ab ba);
  Alcotest.(check string) "one registry key"
    (Obs.Labels.series_name "req" ab)
    (Obs.Labels.series_name "req" ba);
  let c1 = Obs.Metrics.counter_l reg "req" ab in
  let c2 = Obs.Metrics.counter_l reg "req" ba in
  Obs.Metrics.incr c1;
  Obs.Metrics.incr c2;
  Alcotest.(check int) "same series interned" 2 (Obs.Metrics.value c1);
  let other = Obs.Metrics.counter_l reg "req" (Obs.Labels.v [ ("a", "2"); ("b", "2") ]) in
  Alcotest.(check int) "different values split the series" 0
    (Obs.Metrics.value other);
  (* The encoded snapshot key decomposes back to (base, labels). *)
  let base, labels = Obs.Metrics.decompose reg (Obs.Labels.series_name "req" ab) in
  Alcotest.(check string) "decompose base" "req" base;
  Alcotest.(check bool) "decompose labels" true (Obs.Labels.equal ab labels);
  let snap = Obs.Metrics.snapshot reg in
  Alcotest.(check (option int)) "snapshot carries the encoded key" (Some 2)
    (Obs.Metrics.find_counter snap "req{a=\"1\",b=\"2\"}")

let test_labels_validation () =
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Labels.make: duplicate label key \"a\"") (fun () ->
      ignore (Obs.Labels.make [ ("a", "1"); ("a", "2") ]));
  Alcotest.check_raises "invalid key"
    (Invalid_argument "Labels.make: invalid label key \"0bad\"") (fun () ->
      ignore (Obs.Labels.make [ ("0bad", "1") ]));
  Alcotest.(check string) "values escaped in render" "{k=\"x\\\"y\\\\z\"}"
    (Obs.Labels.render (Obs.Labels.v [ ("k", "x\"y\\z") ]));
  Alcotest.(check string) "empty set renders empty" ""
    (Obs.Labels.render Obs.Labels.empty)

(* ---- Timeline ----------------------------------------------------------- *)

(* Two identical probe schedules must produce byte-identical series
   and NDJSON — the reproducibility the seeded fault curves rely on. *)
let test_timeline_determinism () =
  let build () =
    let tl = Obs.Timeline.create ~interval:10.0 () in
    let x = ref 0 in
    Obs.Timeline.add_probe tl "x" (fun () -> float_of_int !x);
    Obs.Timeline.add_probe tl "xx" (fun () -> float_of_int (!x * !x));
    for i = 0 to 4 do
      x := i + 1;
      Obs.Timeline.sample tl ~now:(10.0 *. float_of_int i)
    done;
    tl
  in
  let a = build () and b = build () in
  Alcotest.(check (list string)) "columns in registration order" [ "x"; "xx" ]
    (Obs.Timeline.columns a);
  Alcotest.(check int) "one row per sample" 5 (Obs.Timeline.length a);
  let nd t = Obs.Timeline.to_ndjson ~tags:[ ("case", "t") ] t in
  Alcotest.(check string) "NDJSON bit-identical across runs" (nd a) (nd b);
  (match Obs.Timeline.rows a with
  | (t0, r0) :: _ ->
      Alcotest.(check (float 0.0)) "rows oldest first" 0.0 t0;
      Alcotest.(check (float 0.0)) "probe read at sample time" 1.0 r0.(0)
  | [] -> Alcotest.fail "no rows");
  (* Every NDJSON line is a self-contained JSON object with the tag. *)
  let lines = String.split_on_char '\n' (nd a) in
  let lines = List.filter (fun l -> l <> "") lines in
  Alcotest.(check int) "one line per row" 5 (List.length lines);
  List.iteri
    (fun i line ->
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "row %d is not JSON: %s" i e
      | Ok j ->
          Alcotest.(check (option string)) "tag present" (Some "t")
            Obs.Json.(Option.bind (member "case" j) to_string_opt);
          Alcotest.(check (option (float 0.0))) "probe field"
            (Some (float_of_int ((i + 1) * (i + 1))))
            Obs.Json.(Option.bind (member "xx" j) to_float))
    lines;
  Obs.Timeline.clear a;
  Alcotest.(check int) "clear drops rows" 0 (Obs.Timeline.length a);
  Obs.Timeline.sample a ~now:99.0;
  Alcotest.(check int) "probes survive clear" 1 (Obs.Timeline.length a)

let test_timeline_registration_guards () =
  let tl = Obs.Timeline.create () in
  Obs.Timeline.add_probe tl "x" (fun () -> 0.0);
  Alcotest.check_raises "duplicate probe"
    (Invalid_argument "Timeline.add_probe: duplicate probe \"x\"") (fun () ->
      Obs.Timeline.add_probe tl "x" (fun () -> 1.0));
  Obs.Timeline.sample tl ~now:0.0;
  Alcotest.check_raises "no probes after sampling"
    (Invalid_argument "Timeline.add_probe: timeline already has samples")
    (fun () -> Obs.Timeline.add_probe tl "y" (fun () -> 1.0));
  Alcotest.check_raises "interval must be positive"
    (Invalid_argument "Timeline.create: interval must be positive") (fun () ->
      ignore (Obs.Timeline.create ~interval:0.0 ()))

(* ---- Spans -------------------------------------------------------------- *)

let test_span_balance () =
  let s = Obs.Span.create () in
  Obs.Span.start s "join" ~key:1 ~now:10.0;
  Obs.Span.start s "join" ~key:2 ~now:10.0;
  Obs.Span.start s "join" ~key:3 ~now:12.0;
  Alcotest.(check int) "three in flight" 3 (Obs.Span.open_count s);
  Alcotest.(check (option (float 1e-9))) "finish returns the duration"
    (Some 15.0)
    (Obs.Span.finish s "join" ~key:1 ~now:25.0);
  Alcotest.(check (option (float 0.0))) "closing is idempotent" None
    (Obs.Span.finish s "join" ~key:1 ~now:30.0);
  Alcotest.(check bool) "drop abandons an open span" true
    (Obs.Span.drop s "join" ~key:2);
  Alcotest.(check bool) "drop without an open span is a no-op" false
    (Obs.Span.drop s "join" ~key:2);
  (* A re-start abandons the first attempt and restarts the clock. *)
  Obs.Span.start s "join" ~key:3 ~now:20.0;
  Alcotest.(check (option (float 1e-9))) "restart superseded the clock"
    (Some 10.0)
    (Obs.Span.finish s "join" ~key:3 ~now:30.0);
  Obs.Span.start s "join" ~key:4 ~now:31.0;
  Obs.Span.start s "graft" ~key:4 ~now:31.0;
  Alcotest.(check int) "restore abandons all in flight" 2
    (Obs.Span.drop_all_open s);
  (* The books balance: every first-start either completed, is still
     open, or was abandoned (restarts count as abandonments of the
     superseded attempt, not as new opens). *)
  Alcotest.(check int) "opened (first starts)" 5 (Obs.Span.opened s);
  Alcotest.(check int) "completed" 2 (Obs.Span.completed_count s);
  Alcotest.(check int) "open" 0 (Obs.Span.open_count s);
  Alcotest.(check int) "dropped (incl. one restart)" 4 (Obs.Span.dropped s);
  Alcotest.(check int) "opened + restarts = completed + open + dropped" (5 + 1)
    (Obs.Span.completed_count s + Obs.Span.open_count s + Obs.Span.dropped s);
  (* Exact nearest-rank stats over the two completed durations. *)
  let st = Obs.Span.stats ~name:"join" s in
  Alcotest.(check int) "stats n" 2 st.Obs.Span.n;
  Alcotest.(check (float 1e-9)) "mean" 12.5 st.Obs.Span.mean;
  Alcotest.(check (float 0.0)) "p50 nearest-rank" 10.0 st.Obs.Span.p50;
  Alcotest.(check (float 0.0)) "p95 nearest-rank" 15.0 st.Obs.Span.p95;
  Alcotest.(check (float 0.0)) "max" 15.0 st.Obs.Span.max;
  Alcotest.(check int) "empty family reports n=0" 0
    (Obs.Span.stats ~name:"nope" s).Obs.Span.n

(* ---- OpenMetrics exporter ----------------------------------------------- *)

let test_openmetrics_exposition () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter reg "proto.msgs") 3;
  Obs.Metrics.add
    (Obs.Metrics.counter_l reg "proto.msgs" (Obs.Labels.v [ ("protocol", "hbh") ]))
    2;
  Obs.Metrics.set (Obs.Metrics.gauge reg "load") 0.5;
  ignore (Obs.Metrics.gauge reg "never.set");
  let h = Obs.Metrics.histogram reg ~buckets:[| 1.0; 10.0 |] "delay" in
  List.iter (Obs.Histo.observe h) [ 0.5; 5.0; 99.0 ];
  let out = Obs.Openmetrics.of_metrics reg in
  let lines = String.split_on_char '\n' out in
  let has l = List.mem l lines in
  List.iter
    (fun l -> Alcotest.(check bool) (Printf.sprintf "emits %S" l) true (has l))
    [
      "# TYPE proto_msgs counter";
      "proto_msgs_total 3";
      "proto_msgs_total{protocol=\"hbh\"} 2";
      "# TYPE load gauge";
      "load 0.5";
      "# TYPE delay histogram";
      "delay_bucket{le=\"1\"} 1";
      "delay_bucket{le=\"10\"} 2";
      "delay_bucket{le=\"+Inf\"} 3";
      "delay_sum 104.5";
      "delay_count 3";
      "# EOF";
    ];
  Alcotest.(check bool) "unset gauges are skipped" false
    (List.exists (fun l -> String.length l >= 9 && String.sub l 0 9 = "never_set") lines);
  Alcotest.(check bool) "EOF terminates the document" true
    (match List.rev lines with "" :: "# EOF" :: _ -> true | _ -> false)

(* ---- Per-run metric scoping --------------------------------------------- *)

(* The registry is scoped per experiment invocation: running the same
   seeded experiment twice must leave exactly the state one run
   leaves — nothing accumulates across runs. *)
let test_two_runs_equal_one_run () =
  let run () =
    ignore
      (Experiments.Faults.run ~seed:42 ~scenarios:[ Experiments.Faults.Crash ]
         ~protocols:[ Experiments.Faults.P_hbh ] ());
    Obs.Metrics.snapshot (Obs.Metrics.default ())
  in
  let once = run () in
  let twice = run () in
  Alcotest.(check (list (pair string int)))
    "counters identical" once.Obs.Metrics.counters twice.Obs.Metrics.counters;
  Alcotest.(check int) "histogram count identical"
    (List.length once.Obs.Metrics.histograms)
    (List.length twice.Obs.Metrics.histograms);
  List.iter2
    (fun (n1, (h1 : Obs.Histo.snapshot)) (n2, (h2 : Obs.Histo.snapshot)) ->
      Alcotest.(check string) "histogram name" n1 n2;
      Alcotest.(check int) (n1 ^ " count") h1.Obs.Histo.count h2.Obs.Histo.count;
      Alcotest.(check (float 0.0)) (n1 ^ " sum") h1.Obs.Histo.sum h2.Obs.Histo.sum)
    once.Obs.Metrics.histograms twice.Obs.Metrics.histograms

(* ---- JSON -------------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a \"quoted\"\n\tstring \\ with escapes");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 2.5);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 2 ]);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j' ->
      Alcotest.(check string) "print-parse-print stable"
        (Obs.Json.to_string j) (Obs.Json.to_string j');
      Alcotest.(check (option int)) "member access" (Some (-42))
        Obs.Json.(Option.bind (member "i" j') to_int)

let test_json_rejects_garbage () =
  let bad s =
    match Obs.Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "tru"; "\"unterminated"; "{1: 2}"; "1 2" ]

let test_snapshot_json_roundtrip () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "proto.msgs" in
  Obs.Metrics.add c 17;
  Obs.Metrics.set (Obs.Metrics.gauge reg "load") 0.75;
  let h = Obs.Metrics.histogram reg ~buckets:[| 1.0; 10.0 |] "delay" in
  List.iter (Obs.Histo.observe h) [ 0.2; 3.0; 99.0 ];
  let snap = Obs.Metrics.snapshot reg in
  let json = Obs.Metrics.snapshot_to_json snap in
  match Obs.Json.of_string (Obs.Json.to_string json) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j -> (
      match Obs.Metrics.snapshot_of_json j with
      | Error e -> Alcotest.failf "snapshot decode failed: %s" e
      | Ok snap' ->
          Alcotest.(check (list (pair string int)))
            "counters round-trip" snap.Obs.Metrics.counters
            snap'.Obs.Metrics.counters;
          Alcotest.(check (list (pair string (float 1e-9))))
            "gauges round-trip" snap.Obs.Metrics.gauges
            snap'.Obs.Metrics.gauges;
          let hist s =
            List.map
              (fun (n, (h : Obs.Histo.snapshot)) ->
                (n, (h.buckets, h.overflow, h.count)))
              s.Obs.Metrics.histograms
          in
          Alcotest.(
            check
              (list
                 (pair string
                    (triple (list (pair (float 0.0) int)) int int))))
            "histograms round-trip" (hist snap) (hist snap'))

(* ---- Trace ------------------------------------------------------------- *)

let test_notef_short_circuit () =
  let t = Obs.Trace.create ~enabled:false () in
  let rendered = ref false in
  let spy ppf = Format.fprintf ppf "%b" (rendered := true; !rendered) in
  Obs.Trace.notef t ~time:1.0 ~node:0 "spy: %t" spy;
  Alcotest.(check bool) "inactive trace never formats" false !rendered;
  Alcotest.(check int) "nothing recorded" 0 (Obs.Trace.length t);
  Obs.Trace.set_enabled t true;
  Obs.Trace.notef t ~time:2.0 ~node:0 "spy: %t" spy;
  Alcotest.(check bool) "active trace formats" true !rendered;
  Alcotest.(check int) "note recorded" 1 (Obs.Trace.length t)

let test_sink_without_ring () =
  let t = Obs.Trace.create ~enabled:false () in
  Alcotest.(check bool) "disabled, no sink: inactive" false
    (Obs.Trace.active t);
  let seen = ref [] in
  Obs.Trace.on_event t (fun e -> seen := e :: !seen);
  Alcotest.(check bool) "sink makes it active" true (Obs.Trace.active t);
  Obs.Trace.event t ~time:3.0 ~node:7 Obs.Event.Member_join;
  Alcotest.(check int) "sink saw the event" 1 (List.length !seen);
  Alcotest.(check int) "ring stayed empty (not enabled)" 0
    (Obs.Trace.length t)

let test_ring_bound_and_order () =
  let t = Obs.Trace.create ~enabled:true ~capacity:2 () in
  for i = 1 to 3 do
    Obs.Trace.event t ~time:(float_of_int i) ~node:i Obs.Event.Member_join
  done;
  match Obs.Trace.events t with
  | [ a; b ] ->
      Alcotest.(check (float 0.0)) "oldest surviving" 2.0 a.Obs.Event.time;
      Alcotest.(check (float 0.0)) "newest" 3.0 b.Obs.Event.time
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

(* ---- End to end: ISP-scenario HBH run reports into obs ------------------ *)

let count_kind trace pred =
  List.length (List.filter (fun (e : Obs.Event.t) -> pred e.kind) (Obs.Trace.events trace))

let test_hbh_isp_run_reports () =
  Obs.Metrics.reset (Obs.Metrics.default ());
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 7 in
  Workload.Scenario.randomize rng g;
  let table = Routing.Table.compute g in
  let trace = Obs.Trace.create ~enabled:true ~capacity:65536 () in
  let session = Hbh.Protocol.create ~trace table ~source:Topology.Isp.source in
  let receivers =
    List.filteri (fun i _ -> i mod 3 = 0) Topology.Isp.receiver_hosts
  in
  List.iter (Hbh.Protocol.subscribe session) receivers;
  Hbh.Protocol.converge session;
  let d = Hbh.Protocol.probe session in
  Alcotest.(check (list int)) "tree serves the receivers"
    (List.sort compare receivers)
    (Mcast.Distribution.receivers d);
  let joins = count_kind trace (function Obs.Event.Join _ -> true | _ -> false) in
  let trees = count_kind trace (function Obs.Event.Tree _ -> true | _ -> false) in
  Alcotest.(check bool) "join events recorded" true (joins > 0);
  Alcotest.(check bool) "tree events recorded" true (trees > 0);
  let snap = Obs.Metrics.snapshot (Obs.Metrics.default ()) in
  let counter name =
    match Obs.Metrics.find_counter snap name with
    | Some n -> n
    | None -> Alcotest.failf "counter %s missing from snapshot" name
  in
  Alcotest.(check bool) "proto.hbh.join_msgs > 0" true (counter "proto.hbh.join_msgs" > 0);
  Alcotest.(check bool) "proto.hbh.tree_msgs > 0" true (counter "proto.hbh.tree_msgs" > 0);
  Alcotest.(check int) "engine.events_fired counter tracks the engine"
    (Eventsim.Engine.events_fired (Hbh.Protocol.engine session))
    (counter "engine.events_fired")

(* ---- Rollup ----------------------------------------------------------- *)

let test_rollup_slots_and_overflow () =
  let r = Obs.Metrics.create () in
  let roll =
    Obs.Rollup.create ~max_series:3
      ~labels:(Obs.Labels.v [ ("protocol", "hbh") ])
      r
  in
  (* First three values claim their own series; the fourth spills. *)
  List.iter
    (fun ch -> Obs.Metrics.incr (Obs.Rollup.counter roll "churn.joins" ch))
    [ "c0"; "c1"; "c2"; "c3"; "c4"; "c0" ];
  Alcotest.(check int) "three slots" 3 (Obs.Rollup.series_count roll);
  Alcotest.(check bool) "spilled" true (Obs.Rollup.spilled roll);
  let snap = Obs.Metrics.snapshot r in
  let get ch =
    Obs.Metrics.find_counter snap
      (Obs.Labels.series_name "churn.joins"
         (Obs.Rollup.labels_for roll ch))
  in
  Alcotest.(check (option int)) "hot channel counted twice" (Some 2) (get "c0");
  Alcotest.(check (option int)) "own series" (Some 1) (get "c1");
  (* c3 and c4 share the overflow series. *)
  Alcotest.(check (option int)) "tail aggregated" (Some 2) (get "c3");
  Alcotest.(check bool) "overflow label value" true
    (List.mem_assoc "channel" (Obs.Labels.bindings (Obs.Rollup.labels_for roll "c4"))
    && List.assoc "channel" (Obs.Labels.bindings (Obs.Rollup.labels_for roll "c4"))
       = Obs.Rollup.overflow_value)

let test_rollup_stable_mapping () =
  let r = Obs.Metrics.create () in
  let roll = Obs.Rollup.create ~max_series:2 r in
  let a = Obs.Rollup.labels_for roll "a" in
  (* Same value, same labels — across instruments too. *)
  Alcotest.(check bool) "memoized" true
    (Obs.Labels.equal a (Obs.Rollup.labels_for roll "a"));
  let c = Obs.Rollup.counter roll "m.events" "a" in
  Obs.Metrics.incr c;
  Obs.Metrics.set (Obs.Rollup.gauge roll "m.depth" "a") 4.0;
  let snap = Obs.Metrics.snapshot r in
  Alcotest.(check (option int)) "counter under same labels" (Some 1)
    (Obs.Metrics.find_counter snap (Obs.Labels.series_name "m.events" a));
  Alcotest.(check bool) "gauge under same labels" true
    (Obs.Metrics.find_gauge snap (Obs.Labels.series_name "m.depth" a)
    = Some 4.0)

let test_rollup_rejects_bad_config () =
  let r = Obs.Metrics.create () in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "max_series >= 1" true
    (raises (fun () -> Obs.Rollup.create ~max_series:0 r));
  Alcotest.(check bool) "key clash with base labels" true
    (raises (fun () ->
         Obs.Rollup.create ~labels:(Obs.Labels.v [ ("channel", "x") ]) r))

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "eviction order" `Quick test_ring_eviction;
          Alcotest.test_case "partial fill" `Quick test_ring_partial;
          Alcotest.test_case "truncation accounting" `Quick
            test_ring_truncation_accounting;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "gauge" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram" `Quick test_histogram_semantics;
          Alcotest.test_case "histogram NaN" `Quick test_histogram_nan_quarantined;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "histogram quantile edge cases" `Quick
            test_histogram_quantile_edges;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "two runs equal one run" `Quick
            test_two_runs_equal_one_run;
        ] );
      ( "labels",
        [
          Alcotest.test_case "canonical identity" `Quick test_labels_canonical;
          Alcotest.test_case "validation and rendering" `Quick
            test_labels_validation;
        ] );
      ( "rollup",
        [
          Alcotest.test_case "slots and overflow" `Quick
            test_rollup_slots_and_overflow;
          Alcotest.test_case "stable mapping" `Quick test_rollup_stable_mapping;
          Alcotest.test_case "rejects bad config" `Quick
            test_rollup_rejects_bad_config;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "sampling determinism" `Quick
            test_timeline_determinism;
          Alcotest.test_case "registration guards" `Quick
            test_timeline_registration_guards;
        ] );
      ( "span",
        [
          Alcotest.test_case "open/close balance" `Quick test_span_balance;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "text exposition" `Quick
            test_openmetrics_exposition;
        ] );
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "metrics snapshot round-trip" `Quick
            test_snapshot_json_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "notef short-circuits" `Quick
            test_notef_short_circuit;
          Alcotest.test_case "sink without ring" `Quick test_sink_without_ring;
          Alcotest.test_case "bounded, ordered" `Quick test_ring_bound_and_order;
        ] );
      ( "integration",
        [
          Alcotest.test_case "ISP HBH run reports" `Quick
            test_hbh_isp_run_reports;
        ] );
    ]
