(* Tests for the telemetry subsystem: ring-buffer eviction, metric
   instrument semantics, JSON round-trips, the lazy-formatting trace,
   and an end-to-end assertion that an ISP-scenario HBH run reports
   into the default registry and trace. *)

(* ---- Ring buffer ------------------------------------------------------- *)

let test_ring_eviction () =
  let r = Obs.Ring.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Obs.Ring.capacity r);
  List.iter (Obs.Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length capped" 3 (Obs.Ring.length r);
  Alcotest.(check (list int)) "oldest evicted first" [ 3; 4; 5 ]
    (Obs.Ring.to_list r);
  Alcotest.(check (list int)) "last n, oldest-of-them first" [ 4; 5 ]
    (Obs.Ring.last r 2);
  Alcotest.(check (list int)) "last over-asks clamps" [ 3; 4; 5 ]
    (Obs.Ring.last r 10);
  Alcotest.(check int) "fold sees survivors" 12
    (Obs.Ring.fold (fun acc x -> acc + x) 0 r);
  Obs.Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Obs.Ring.length r);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

let test_ring_partial () =
  let r = Obs.Ring.create ~capacity:4 in
  Obs.Ring.push r "a";
  Obs.Ring.push r "b";
  Alcotest.(check (list string)) "unfilled keeps all" [ "a"; "b" ]
    (Obs.Ring.to_list r)

(* ---- Metrics instruments ----------------------------------------------- *)

let test_counter_semantics () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "x.count" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Metrics.value c);
  (* Interning: same name returns the same instrument. *)
  let c' = Obs.Metrics.counter reg "x.count" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "interned by name" 43 (Obs.Metrics.value c);
  Obs.Metrics.reset reg;
  Alcotest.(check int) "reset zeroes, reference stays live" 0
    (Obs.Metrics.value c)

let test_gauge_semantics () =
  let reg = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge reg "x.level" in
  Alcotest.(check bool) "nan until set" true
    (Float.is_nan (Obs.Metrics.gauge_value g));
  Obs.Metrics.set g 2.5;
  Obs.Metrics.set g 7.0;
  Alcotest.(check (float 0.0)) "last value wins" 7.0
    (Obs.Metrics.gauge_value g)

(* Regression: a NaN observation used to land in the first bucket (it
   compares false against every bound) and poison sum/min/max for the
   histogram's remaining lifetime. *)
let test_histogram_nan_quarantined () =
  let h = Obs.Histo.create ~buckets:[| 1.0; 10.0 |] () in
  Obs.Histo.observe h nan;
  Obs.Histo.observe h 0.5;
  Obs.Histo.observe h nan;
  let s = Obs.Histo.snapshot h in
  Alcotest.(check int) "all observations counted" 3 s.Obs.Histo.count;
  Alcotest.(check int) "NaNs quarantined in overflow" 2 s.Obs.Histo.overflow;
  Alcotest.(check (list (pair (float 0.0) int)))
    "finite sample in its bucket"
    [ (1.0, 1); (10.0, 0) ]
    s.Obs.Histo.buckets;
  Alcotest.(check (float 1e-9)) "sum unpoisoned" 0.5 s.Obs.Histo.sum;
  Alcotest.(check (float 0.0)) "min unpoisoned" 0.5 s.Obs.Histo.min;
  Alcotest.(check (float 0.0)) "max unpoisoned" 0.5 s.Obs.Histo.max;
  Alcotest.(check (float 1e-9)) "mean over all samples" (0.5 /. 3.0)
    (Obs.Histo.mean h)

let test_histogram_semantics () =
  let h = Obs.Histo.create ~buckets:[| 1.0; 10.0; 100.0 |] () in
  List.iter (Obs.Histo.observe h) [ 0.5; 5.0; 5.0; 50.0; 5000.0 ];
  Alcotest.(check int) "count" 5 (Obs.Histo.count h);
  Alcotest.(check (float 1e-9)) "sum" 5060.5 (Obs.Histo.sum h);
  let s = Obs.Histo.snapshot h in
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket counts"
    [ (1.0, 1); (10.0, 2); (100.0, 1) ]
    s.Obs.Histo.buckets;
  Alcotest.(check int) "overflow" 1 s.Obs.Histo.overflow;
  Alcotest.(check (float 0.0)) "min" 0.5 s.Obs.Histo.min;
  Alcotest.(check (float 0.0)) "max" 5000.0 s.Obs.Histo.max;
  Obs.Histo.reset h;
  Alcotest.(check int) "reset" 0 (Obs.Histo.count h)

(* ---- JSON -------------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a \"quoted\"\n\tstring \\ with escapes");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 2.5);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 2 ]);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j' ->
      Alcotest.(check string) "print-parse-print stable"
        (Obs.Json.to_string j) (Obs.Json.to_string j');
      Alcotest.(check (option int)) "member access" (Some (-42))
        Obs.Json.(Option.bind (member "i" j') to_int)

let test_json_rejects_garbage () =
  let bad s =
    match Obs.Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "tru"; "\"unterminated"; "{1: 2}"; "1 2" ]

let test_snapshot_json_roundtrip () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "proto.msgs" in
  Obs.Metrics.add c 17;
  Obs.Metrics.set (Obs.Metrics.gauge reg "load") 0.75;
  let h = Obs.Metrics.histogram reg ~buckets:[| 1.0; 10.0 |] "delay" in
  List.iter (Obs.Histo.observe h) [ 0.2; 3.0; 99.0 ];
  let snap = Obs.Metrics.snapshot reg in
  let json = Obs.Metrics.snapshot_to_json snap in
  match Obs.Json.of_string (Obs.Json.to_string json) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j -> (
      match Obs.Metrics.snapshot_of_json j with
      | Error e -> Alcotest.failf "snapshot decode failed: %s" e
      | Ok snap' ->
          Alcotest.(check (list (pair string int)))
            "counters round-trip" snap.Obs.Metrics.counters
            snap'.Obs.Metrics.counters;
          Alcotest.(check (list (pair string (float 1e-9))))
            "gauges round-trip" snap.Obs.Metrics.gauges
            snap'.Obs.Metrics.gauges;
          let hist s =
            List.map
              (fun (n, (h : Obs.Histo.snapshot)) ->
                (n, (h.buckets, h.overflow, h.count)))
              s.Obs.Metrics.histograms
          in
          Alcotest.(
            check
              (list
                 (pair string
                    (triple (list (pair (float 0.0) int)) int int))))
            "histograms round-trip" (hist snap) (hist snap'))

(* ---- Trace ------------------------------------------------------------- *)

let test_notef_short_circuit () =
  let t = Obs.Trace.create ~enabled:false () in
  let rendered = ref false in
  let spy ppf = Format.fprintf ppf "%b" (rendered := true; !rendered) in
  Obs.Trace.notef t ~time:1.0 ~node:0 "spy: %t" spy;
  Alcotest.(check bool) "inactive trace never formats" false !rendered;
  Alcotest.(check int) "nothing recorded" 0 (Obs.Trace.length t);
  Obs.Trace.set_enabled t true;
  Obs.Trace.notef t ~time:2.0 ~node:0 "spy: %t" spy;
  Alcotest.(check bool) "active trace formats" true !rendered;
  Alcotest.(check int) "note recorded" 1 (Obs.Trace.length t)

let test_sink_without_ring () =
  let t = Obs.Trace.create ~enabled:false () in
  Alcotest.(check bool) "disabled, no sink: inactive" false
    (Obs.Trace.active t);
  let seen = ref [] in
  Obs.Trace.on_event t (fun e -> seen := e :: !seen);
  Alcotest.(check bool) "sink makes it active" true (Obs.Trace.active t);
  Obs.Trace.event t ~time:3.0 ~node:7 Obs.Event.Member_join;
  Alcotest.(check int) "sink saw the event" 1 (List.length !seen);
  Alcotest.(check int) "ring stayed empty (not enabled)" 0
    (Obs.Trace.length t)

let test_ring_bound_and_order () =
  let t = Obs.Trace.create ~enabled:true ~capacity:2 () in
  for i = 1 to 3 do
    Obs.Trace.event t ~time:(float_of_int i) ~node:i Obs.Event.Member_join
  done;
  match Obs.Trace.events t with
  | [ a; b ] ->
      Alcotest.(check (float 0.0)) "oldest surviving" 2.0 a.Obs.Event.time;
      Alcotest.(check (float 0.0)) "newest" 3.0 b.Obs.Event.time
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

(* ---- End to end: ISP-scenario HBH run reports into obs ------------------ *)

let count_kind trace pred =
  List.length (List.filter (fun (e : Obs.Event.t) -> pred e.kind) (Obs.Trace.events trace))

let test_hbh_isp_run_reports () =
  Obs.Metrics.reset Obs.Metrics.default;
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 7 in
  Workload.Scenario.randomize rng g;
  let table = Routing.Table.compute g in
  let trace = Obs.Trace.create ~enabled:true ~capacity:65536 () in
  let session = Hbh.Protocol.create ~trace table ~source:Topology.Isp.source in
  let receivers =
    List.filteri (fun i _ -> i mod 3 = 0) Topology.Isp.receiver_hosts
  in
  List.iter (Hbh.Protocol.subscribe session) receivers;
  Hbh.Protocol.converge session;
  let d = Hbh.Protocol.probe session in
  Alcotest.(check (list int)) "tree serves the receivers"
    (List.sort compare receivers)
    (Mcast.Distribution.receivers d);
  let joins = count_kind trace (function Obs.Event.Join _ -> true | _ -> false) in
  let trees = count_kind trace (function Obs.Event.Tree _ -> true | _ -> false) in
  Alcotest.(check bool) "join events recorded" true (joins > 0);
  Alcotest.(check bool) "tree events recorded" true (trees > 0);
  let snap = Obs.Metrics.snapshot Obs.Metrics.default in
  let counter name =
    match Obs.Metrics.find_counter snap name with
    | Some n -> n
    | None -> Alcotest.failf "counter %s missing from snapshot" name
  in
  Alcotest.(check bool) "proto.hbh.join_msgs > 0" true (counter "proto.hbh.join_msgs" > 0);
  Alcotest.(check bool) "proto.hbh.tree_msgs > 0" true (counter "proto.hbh.tree_msgs" > 0);
  Alcotest.(check int) "engine.events_fired counter tracks the engine"
    (Eventsim.Engine.events_fired (Hbh.Protocol.engine session))
    (counter "engine.events_fired")

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "eviction order" `Quick test_ring_eviction;
          Alcotest.test_case "partial fill" `Quick test_ring_partial;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "gauge" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram" `Quick test_histogram_semantics;
          Alcotest.test_case "histogram NaN" `Quick test_histogram_nan_quarantined;
        ] );
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "metrics snapshot round-trip" `Quick
            test_snapshot_json_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "notef short-circuits" `Quick
            test_notef_short_circuit;
          Alcotest.test_case "sink without ring" `Quick test_sink_without_ring;
          Alcotest.test_case "bounded, ordered" `Quick test_ring_bound_and_order;
        ] );
      ( "integration",
        [
          Alcotest.test_case "ISP HBH run reports" `Quick
            test_hbh_isp_run_reports;
        ] );
    ]
