(* The multicore determinism contract: sharding a sweep across domains
   must be invisible in the output.  Three layers are covered —
   [Stats.Parallel] (index-ordered results, exception propagation),
   the registry scoping that keeps concurrent runs from
   cross-contaminating [Obs.Metrics], and end-to-end byte equality of
   figures and fault experiments at every [jobs] value.  Plus the
   seed-derivation bugfix: run [i]'s draw stream is a pure function of
   [(seed, size, i)], independent of which runs precede it. *)

let metrics_json () =
  Obs.Json.to_string
    (Obs.Metrics.snapshot_to_json
       (Obs.Metrics.snapshot (Obs.Metrics.default ())))

(* ---- Stats.Parallel ----------------------------------------------------- *)

let test_map_order () =
  let r = Stats.Parallel.map ~jobs:4 17 (fun i -> i * i) in
  Alcotest.(check (array int))
    "results land at their own index"
    (Array.init 17 (fun i -> i * i))
    r

let test_map_more_jobs_than_work () =
  let r = Stats.Parallel.map ~jobs:8 3 (fun i -> -i) in
  Alcotest.(check (array int)) "jobs > n" [| 0; -1; -2 |] r

let test_map_exception () =
  match Stats.Parallel.map ~jobs:3 8 (fun i -> if i = 5 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure m -> Alcotest.(check string) "original exception" "boom" m

(* ---- Seed derivation ---------------------------------------------------- *)

let test_derive_pure () =
  let a = Stats.Rng.derive ~seed:42 ~index:7 in
  (* Unrelated draws from other derived streams must not disturb
     stream 7 — unlike [Rng.split], where the k-th child depends on
     every draw before it. *)
  let noise = Stats.Rng.derive ~seed:42 ~index:3 in
  for _ = 1 to 100 do
    ignore (Stats.Rng.float noise 1.0)
  done;
  let b = Stats.Rng.derive ~seed:42 ~index:7 in
  Alcotest.(check (list (float 0.0)))
    "stream 7 is a pure function of (seed, 7)"
    (List.init 8 (fun _ -> Stats.Rng.float a 1.0))
    (List.init 8 (fun _ -> Stats.Rng.float b 1.0))

let test_derive2_distinct () =
  let draws a b =
    let r = Stats.Rng.derive2 ~seed:1 ~a ~b in
    List.init 4 (fun _ -> Stats.Rng.float r 1.0)
  in
  Alcotest.(check bool) "(a,b) and (b,a) differ" true (draws 2 3 <> draws 3 2);
  Alcotest.(check bool) "(a,b) and (a,b+1) differ" true (draws 2 3 <> draws 2 4)

(* Satellite of the derive bugfix: a run's sample must not depend on
   which runs (or sizes) were computed before it.  The size-16 column
   of a [4; 16] sweep must equal the whole of a [16]-only sweep. *)
let test_run_independence () =
  let base = Experiments.Common.isp_config () in
  let seed = 11 and runs = 6 in
  let points_at ~x (r : Experiments.Common.result) =
    List.map
      (fun s -> (Stats.Series.name s, List.assoc x (Stats.Series.points s)))
      (Stats.Series.group_series r.cost)
  in
  let full =
    Experiments.Common.sweep ~runs ~seed { base with sizes = [ 4; 16 ] }
  in
  let solo =
    Experiments.Common.sweep ~runs ~seed { base with sizes = [ 16 ] }
  in
  List.iter2
    (fun (name, a) (name', b) ->
      Alcotest.(check string) "same protocol" name name';
      Alcotest.(check (float 0.0)) (name ^ " size-16 mean bit-identical") a b)
    (points_at ~x:16 full) (points_at ~x:16 solo)

let test_sweep_sample_pure () =
  let cfg = Experiments.Common.isp_config () in
  let one () = Experiments.Common.sweep_sample ~seed:5 cfg ~n:8 ~run:3 in
  Alcotest.(check bool) "sweep_sample is replayable" true (one () = one ())

(* ---- Registry isolation across domains ---------------------------------- *)

let test_registry_isolation () =
  let regs = Array.init 2 (fun _ -> Obs.Metrics.create ()) in
  let counts = [| 10_000; 20_000 |] in
  let work i () =
    Obs.Metrics.with_registry regs.(i) (fun () ->
        let c = Obs.Metrics.hot_counter "iso.shared_name" in
        let h = Obs.Metrics.hot_histogram "iso.shared_histo" in
        for k = 1 to counts.(i) do
          Obs.Metrics.hot_incr c;
          Obs.Metrics.hot_observe h (float_of_int (k land 7))
        done;
        Obs.Metrics.hot_value c)
  in
  let other = Domain.spawn (work 1) in
  let v0 = work 0 () in
  let v1 = Domain.join other in
  Alcotest.(check int) "domain 0 sees only its own incrs" counts.(0) v0;
  Alcotest.(check int) "domain 1 sees only its own incrs" counts.(1) v1;
  Array.iteri
    (fun i reg ->
      let s = Obs.Metrics.snapshot reg in
      Alcotest.(check (option int))
        (Printf.sprintf "registry %d counter uncontaminated" i)
        (Some counts.(i))
        (Obs.Metrics.find_counter s "iso.shared_name"))
    regs

(* ---- End-to-end: parallel == sequential, byte for byte ------------------ *)

let figure_csv (r : Experiments.Common.result) =
  Stats.Series.to_csv r.cost ^ "\n" ^ Stats.Series.to_csv r.delay

let prop_figures_jobs_equiv =
  QCheck.Test.make ~name:"figures: jobs=k byte-identical to sequential"
    ~count:3
    QCheck.(pair (int_range 0 1000) (oneofl [ 2; 4; 8 ]))
    (fun (seed, jobs) ->
      let seq = Experiments.Figures.isp ~runs:6 ~seed () in
      let seq_metrics = metrics_json () in
      let par = Experiments.Figures.isp ~runs:6 ~seed ~jobs () in
      let par_metrics = metrics_json () in
      figure_csv seq = figure_csv par && seq_metrics = par_metrics)

let prop_faults_jobs_equiv =
  QCheck.Test.make ~name:"faults: jobs=k byte-identical to sequential"
    ~count:2
    QCheck.(pair (int_range 0 1000) (oneofl [ 2; 4; 8 ]))
    (fun (seed, jobs) ->
      let render os = Format.asprintf "%a" Experiments.Faults.pp_outcomes os in
      let seq = Experiments.Faults.run ~seed () in
      let seq_metrics = metrics_json () in
      let par = Experiments.Faults.run ~seed ~jobs () in
      let par_metrics = metrics_json () in
      render seq = render par && seq_metrics = par_metrics)

let test_scaling_jobs_equiv () =
  let seq = Experiments.Scaling.connectivity ~runs:5 ~seed:9 () in
  let par = Experiments.Scaling.connectivity ~runs:5 ~seed:9 ~jobs:4 () in
  Alcotest.(check bool) "connectivity points identical" true (seq = par)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [
      ( "parallel map",
        [
          Alcotest.test_case "index order" `Quick test_map_order;
          Alcotest.test_case "jobs > n" `Quick test_map_more_jobs_than_work;
          Alcotest.test_case "exception propagation" `Quick test_map_exception;
        ] );
      ( "seed derivation",
        [
          Alcotest.test_case "derive is order-free" `Quick test_derive_pure;
          Alcotest.test_case "derive2 separates axes" `Quick
            test_derive2_distinct;
          Alcotest.test_case "run independence" `Quick test_run_independence;
          Alcotest.test_case "sweep_sample pure" `Quick test_sweep_sample_pure;
        ] );
      ( "registry isolation",
        [
          Alcotest.test_case "two domains never cross-contaminate" `Quick
            test_registry_isolation;
        ] );
      ( "jobs equivalence",
        Alcotest.test_case "scaling jobs=4" `Quick test_scaling_jobs_equiv
        :: qsuite [ prop_figures_jobs_equiv; prop_faults_jobs_equiv ] );
    ]
