(* Property-based cross-protocol invariants, exercised on randomized
   topologies (random-connected, Waxman, grid) with randomized
   asymmetric costs and receiver sets — the deep safety net under the
   figure sweeps. *)

let count = 60

(* A random scenario on a random topology family. *)
let scenario_of_seed seed =
  let rng = Stats.Rng.create seed in
  let g =
    match seed mod 3 with
    | 0 ->
        let n = 8 + Stats.Rng.int rng 20 in
        Topology.Generators.random_connected rng ~n ~avg_degree:3.0
    | 1 ->
        let n = 8 + Stats.Rng.int rng 20 in
        Topology.Generators.waxman rng ~n
    | _ ->
        Topology.Generators.grid
          ~rows:(2 + Stats.Rng.int rng 3)
          ~cols:(2 + Stats.Rng.int rng 4)
          ()
  in
  Topology.Graph.randomize_costs g rng ~lo:1 ~hi:10;
  let table = Routing.Table.compute g in
  let hosts = Topology.Graph.hosts g in
  let source = List.nth hosts (Stats.Rng.int rng (List.length hosts)) in
  let candidates = List.filter (fun h -> h <> source) hosts in
  let n = 1 + Stats.Rng.int rng (min 10 (List.length candidates)) in
  let receivers = Workload.Scenario.pick_receivers rng ~candidates ~n in
  (g, table, source, receivers)

let make name f =
  QCheck.Test.make ~name ~count QCheck.(int_range 0 100_000) (fun seed ->
      let g, table, source, receivers = scenario_of_seed seed in
      f g table source receivers)

let prop_hbh_one_copy_per_link =
  make "HBH: exactly one copy per used link (any topology)"
    (fun _ table source receivers ->
      let d = Hbh.Analytic.build table ~source ~receivers in
      Mcast.Distribution.max_stress d = 1
      && Mcast.Distribution.cost d = Mcast.Distribution.links_used d)

let prop_hbh_shortest_delay =
  make "HBH: every receiver at shortest-path delay" (fun g table source receivers ->
      let d = Hbh.Analytic.build table ~source ~receivers in
      List.for_all
        (fun r ->
          match Mcast.Distribution.delay d r with
          | Some delay ->
              Float.abs
                (delay -. Routing.Path.delay g (Routing.Table.path table source r))
              < 1e-9
          | None -> false)
        receivers)

let prop_hbh_dominates_all_delays =
  make "HBH: no protocol beats its average delay"
    (fun _ table source receivers ->
      let hbh =
        Mcast.Distribution.avg_delay (Hbh.Analytic.build table ~source ~receivers)
      in
      let others =
        [
          Mcast.Distribution.avg_delay
            (Pim.Pim_ss.build table ~source ~receivers);
          Mcast.Distribution.avg_delay
            (Reunite.Analytic.build table ~source ~receivers);
        ]
      in
      List.for_all (fun o -> hbh <= o +. 1e-9) others)

let prop_hbh_constrained_consistent =
  make "HBH constrained: cost >= ideal, delays identical"
    (fun g table source receivers ->
      (* Random capability pattern. *)
      let rng = Stats.Rng.create (source + 7919) in
      List.iter
        (fun r ->
          Topology.Graph.set_multicast_capable g r (Stats.Rng.bool rng))
        (Topology.Graph.routers g);
      let ideal = Hbh.Analytic.build table ~source ~receivers in
      let constrained = Hbh.Analytic.build_constrained table ~source ~receivers in
      List.iter
        (fun r -> Topology.Graph.set_multicast_capable g r true)
        (Topology.Graph.routers g);
      Mcast.Distribution.cost constrained >= Mcast.Distribution.cost ideal
      && List.for_all
           (fun r ->
             Mcast.Distribution.delay constrained r
             = Mcast.Distribution.delay ideal r)
           receivers)

let prop_pim_ss_is_tree =
  make "PIM-SS: reverse-SPT union is a tree" (fun _ table source receivers ->
      let links = Pim.Pim_ss.tree_links table ~source ~receivers in
      let indeg = Hashtbl.create 16 in
      List.iter
        (fun (_, v) ->
          Hashtbl.replace indeg v
            (1 + Option.value ~default:0 (Hashtbl.find_opt indeg v)))
        links;
      Hashtbl.fold (fun v n acc -> acc && (v = source || n <= 1)) indeg true)

let prop_reunite_serves_everyone =
  make "REUNITE: every receiver served, any join order"
    (fun _ table source receivers ->
      let d = Reunite.Analytic.build table ~source ~receivers in
      Mcast.Distribution.receivers d = List.sort compare receivers)

let prop_reunite_settle_preserves_delivery =
  make "REUNITE: settle and stabilize never lose receivers"
    (fun _ table source receivers ->
      let t = Reunite.Analytic.create table ~source in
      List.iter (Reunite.Analytic.join t) receivers;
      Reunite.Analytic.settle t;
      Reunite.Analytic.stabilize t;
      Mcast.Distribution.receivers (Reunite.Analytic.distribution t)
      = List.sort compare receivers)

let prop_pim_sm_serves_everyone =
  make "PIM-SM: every receiver served from any RP"
    (fun g table source receivers ->
      let rng = Stats.Rng.create (source * 31) in
      let rp = Stats.Rng.pick rng (Topology.Graph.routers g) in
      let d = Pim.Pim_sm.build table ~source ~rp ~receivers in
      Mcast.Distribution.receivers d = List.sort compare receivers)

let prop_all_costs_bounded_by_unicast_star =
  make "recursive unicast never exceeds per-receiver unicast"
    (fun _ table source receivers ->
      (* Sending each receiver its own unicast copy costs the sum of
         path lengths; every multicast tree must do at least as well. *)
      let star =
        List.fold_left
          (fun acc r ->
            acc + Routing.Path.hops (Routing.Table.path table source r))
          0 receivers
      in
      Mcast.Distribution.cost (Hbh.Analytic.build table ~source ~receivers)
      <= star
      && Mcast.Distribution.cost
           (Hbh.Analytic.build_constrained table ~source ~receivers)
         <= star)

let prop_symmetric_costs_collapse_gap =
  QCheck.Test.make ~name:"symmetric costs: PIM-SS delay = HBH delay" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      let n = 8 + Stats.Rng.int rng 15 in
      let g = Topology.Generators.random_connected rng ~n ~avg_degree:3.0 in
      Topology.Graph.randomize_costs g rng ~lo:1 ~hi:10;
      Topology.Graph.symmetrize_costs g;
      let table = Routing.Table.compute g in
      let hosts = Topology.Graph.hosts g in
      let source = List.hd hosts in
      let receivers =
        Workload.Scenario.pick_receivers rng
          ~candidates:(List.tl hosts)
          ~n:(min 6 (n - 1))
      in
      let hbh = Hbh.Analytic.build table ~source ~receivers in
      let ss = Pim.Pim_ss.build table ~source ~receivers in
      (* With symmetric costs the reverse path has the forward path's
         delay, so per-receiver delays agree exactly. *)
      List.for_all
        (fun r ->
          match (Mcast.Distribution.delay hbh r, Mcast.Distribution.delay ss r) with
          | Some a, Some b -> Float.abs (a -. b) < 1e-9
          | _ -> false)
        receivers)

let prop_event_hbh_matches_analytic_small =
  QCheck.Test.make ~name:"event-driven HBH = analytic (small random nets)"
    ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      let n = 5 + Stats.Rng.int rng 8 in
      let g = Topology.Generators.random_connected rng ~n ~avg_degree:2.5 in
      Topology.Graph.randomize_costs g rng ~lo:1 ~hi:10;
      let table = Routing.Table.compute g in
      let hosts = Topology.Graph.hosts g in
      let source = List.hd hosts in
      let receivers =
        Workload.Scenario.pick_receivers rng
          ~candidates:(List.tl hosts)
          ~n:(min 4 (n - 1))
      in
      let session = Hbh.Protocol.create table ~source in
      List.iter (Hbh.Protocol.subscribe session) receivers;
      Hbh.Protocol.converge ~periods:20 session;
      let d = Hbh.Protocol.probe session in
      Mcast.Distribution.equal_shape d
        (Hbh.Analytic.build table ~source ~receivers))

(* Router-router links actually carried by the tree, so a failure
   bites; host access links are excluded (no reroute exists for
   them). *)
let tree_core_links g table ~source ~receivers =
  List.concat_map
    (fun r ->
      let rec edges = function
        | a :: (b :: _ as rest)
          when Topology.Graph.is_router g a && Topology.Graph.is_router g b ->
            (min a b, max a b) :: edges rest
        | _ :: rest -> edges rest
        | [] -> []
      in
      edges (Routing.Table.path table source r))
    receivers
  |> List.sort_uniq compare

let prop_hbh_recovers_from_link_failure =
  QCheck.Test.make
    ~name:"HBH: any single link failure + restore heals by detected quiescence"
    ~count:10
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g, table, source, receivers = scenario_of_seed seed in
      let session = Hbh.Protocol.create table ~source in
      List.iter (Hbh.Protocol.subscribe session) receivers;
      Hbh.Protocol.converge ~periods:12 session;
      let net = Hbh.Protocol.network session in
      let tree_links = tree_core_links g table ~source ~receivers in
      match tree_links with
      | [] -> true (* degenerate star: nothing to fail *)
      | links ->
          let pick = Stats.Rng.create (seed + 7919) in
          let u, v = List.nth links (Stats.Rng.int pick (List.length links)) in
          let cfg = Hbh.Protocol.default_config in
          let inj = Fault.Injector.create net in
          Fault.Injector.apply inj (Fault.Plan.Link_down { u; v });
          ignore (Fault.Injector.reconverge net);
          Hbh.Protocol.run_for session (2.0 *. cfg.t1);
          Fault.Injector.apply inj (Fault.Plan.Link_up { u; v });
          ignore (Fault.Injector.reconverge net);
          (* Run until the verification layer's quiescence detector
             sees the soft state settle (canonical digest stable
             across refresh windows), instead of a blind fixed wait.
             The budget is derived, not guessed: an abandoned branch
             drains one hop per t2 in the worst case — a stale
             entry's final tree messages re-refresh its downstream
             entry just before it dies — so total drain is bounded by
             the branch depth, itself bounded by the router count.
             The old heuristic burned a flat 4*t2 on every run, which
             both over-waits on the common shallow case and is
             exceeded by deep refresh chains; detection waits exactly
             as long as the drain takes and turns a genuinely
             non-converging state into a failure instead of a silent
             half-wait. *)
          let sut = Verif.Sut.of_hbh session in
          let routers = List.length (Topology.Graph.routers g) in
          let budget_factor = float_of_int (routers + 2) in
          (match Verif.Scenario.quiesce ~budget_factor sut with
          | Some _ -> ()
          | None ->
              QCheck.Test.fail_reportf
                "soft state still churning %g*t2 after link restore"
                budget_factor);
          let d = Hbh.Protocol.probe session in
          Mcast.Distribution.receivers d = List.sort compare receivers
          && Mcast.Distribution.max_stress d = 1)

(* The same healing contract for the hard-state instance.  HPIM-DM
   has no refresh cycle to drain: detection is the hello holdtime, and
   repair is event-driven — the RPF side re-expresses its interest
   reliably, the far side's hard entry resumes on revival-sync — so
   the property doubles as a regression net for the reliable layer's
   retransmission/ack clearing under partitions. *)
let prop_hpim_recovers_from_link_failure =
  QCheck.Test.make
    ~name:
      "HPIM-DM: any single link failure + restore heals by detected quiescence"
    ~count:10
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g, table, source, receivers = scenario_of_seed seed in
      let session = Hpim.Dm.create table ~source in
      List.iter (Hpim.Dm.subscribe session) receivers;
      Hpim.Dm.converge ~periods:12 session;
      let net = Hpim.Dm.network session in
      let tree_links = tree_core_links g table ~source ~receivers in
      match tree_links with
      | [] -> true (* degenerate star: nothing to fail *)
      | links ->
          let pick = Stats.Rng.create (seed + 7919) in
          let u, v = List.nth links (Stats.Rng.int pick (List.length links)) in
          let cfg = Hpim.Dm.config session in
          let inj = Fault.Injector.create net in
          Fault.Injector.apply inj (Fault.Plan.Link_down { u; v });
          ignore (Fault.Injector.reconverge net);
          (* past the holdtime, so both endpoints declare each other
             dead and the hard state across the link is released *)
          Hpim.Dm.run_for session (2.0 *. cfg.Hpim.Dm.holdtime);
          Fault.Injector.apply inj (Fault.Plan.Link_up { u; v });
          ignore (Fault.Injector.reconverge net);
          let sut = Verif.Sut.of_hpim session in
          let routers = List.length (Topology.Graph.routers g) in
          let budget_factor = float_of_int (routers + 2) in
          (match Verif.Scenario.quiesce ~budget_factor sut with
          | Some _ -> ()
          | None ->
              QCheck.Test.fail_reportf
                "hard state still churning %g*holdtime after link restore"
                budget_factor);
          let d = Hpim.Dm.probe session in
          (* Copies are unicast-addressed (PIM-SSM's shape), so with
             asymmetric costs two copies' paths may share a link —
             per-link stress 1 is not this stack's invariant.  The
             heal contract is per-receiver: everyone served, exactly
             one copy each. *)
          Mcast.Distribution.receivers d = List.sort compare receivers
          && Mcast.Distribution.duplicate_deliveries d = 0)

(* The ROADMAP mutual-capture pathology, replayed: the link-failure
   property's qcheck input 71643 — link 5-17 on a 22-router random
   topology.  Before the route-epoch freshness guard (DESIGN.md §6b)
   the restore left two HBH branch routers holding each other in
   their MFTs, a forwarding loop that mutual refreshing kept alive
   forever; a runtime monitor confirmed the tree_loop_free violation
   from a plain run.  With the guard, intercepted joins no longer
   refresh entries the post-restore routing doesn't validate, so the
   zombie branch drains: the monitor must stay silent and the member
   must heal (every receiver served, one copy each).  The golden plan
   test/golden/hbh-mutual-capture.plan replays the same scenario
   through the fault DSL. *)
let test_mutual_capture_heals () =
  let seed = 71643 in
  let g, table, source, receivers = scenario_of_seed seed in
  let session = Hbh.Protocol.create table ~source in
  List.iter (Hbh.Protocol.subscribe session) receivers;
  Hbh.Protocol.converge ~periods:12 session;
  let net = Hbh.Protocol.network session in
  let tree_links = tree_core_links g table ~source ~receivers in
  let pick = Stats.Rng.create (seed + 7919) in
  let u, v = List.nth tree_links (Stats.Rng.int pick (List.length tree_links)) in
  Alcotest.(check (pair int int)) "the ROADMAP repro link" (5, 17) (u, v);
  let mon = Verif.Monitor.attach (Verif.Sut.of_hbh session) in
  let cfg = Hbh.Protocol.default_config in
  let inj = Fault.Injector.create net in
  Fault.Injector.apply inj (Fault.Plan.Link_down { u; v });
  ignore (Fault.Injector.reconverge net);
  Hbh.Protocol.run_for session (2.0 *. cfg.Hbh.Protocol.t1);
  Fault.Injector.apply inj (Fault.Plan.Link_up { u; v });
  ignore (Fault.Injector.reconverge net);
  Hbh.Protocol.run_for session (8.0 *. cfg.Hbh.Protocol.t2);
  Verif.Monitor.stop mon;
  Alcotest.(check int) "no confirmed monitor violations" 0
    (List.length (Verif.Monitor.violations mon));
  let d = Hbh.Protocol.probe session in
  Alcotest.(check (list int))
    "every receiver served after restore" (List.sort compare receivers)
    (Mcast.Distribution.receivers d);
  Alcotest.(check int) "one copy per receiver" 1 (Mcast.Distribution.max_stress d)

(* The same pathology as a committed fixture: the ddmin-minimal plan
   (link 5-17 down, one decay window, link up) replayed through the
   fault DSL against the 71643 scenario.  The guard makes it clean —
   the file documents what used to break and trips if it ever breaks
   again. *)
let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_mutual_capture_golden_plan () =
  let plan =
    Fault.Plan.of_string (read_file "golden/hbh-mutual-capture.plan")
  in
  (* the text form round-trips: the fixture stays loadable *)
  let reparsed = Fault.Plan.of_string (Fault.Plan.to_string plan) in
  Alcotest.(check int)
    "round-trip directive count"
    (List.length (Fault.Plan.directives plan))
    (List.length (Fault.Plan.directives reparsed));
  let _, table, source, receivers = scenario_of_seed 71643 in
  let session = Hbh.Protocol.create table ~source in
  List.iter (Hbh.Protocol.subscribe session) receivers;
  Hbh.Protocol.converge ~periods:12 session;
  let vs = Verif.Scenario.replay_plan (Verif.Sut.of_hbh session) plan in
  Alcotest.(check (list string))
    "golden plan replays clean under the freshness guard" []
    (List.map (fun (v : Verif.Oracle.violation) -> v.Verif.Oracle.oracle) vs)

let () =
  Alcotest.run "properties"
    [
      ( "protocol-invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_hbh_one_copy_per_link;
            prop_hbh_shortest_delay;
            prop_hbh_dominates_all_delays;
            prop_hbh_constrained_consistent;
            prop_pim_ss_is_tree;
            prop_reunite_serves_everyone;
            prop_reunite_settle_preserves_delivery;
            prop_pim_sm_serves_everyone;
            prop_all_costs_bounded_by_unicast_star;
            prop_symmetric_costs_collapse_gap;
            prop_hbh_recovers_from_link_failure;
            prop_hpim_recovers_from_link_failure;
            prop_event_hbh_matches_analytic_small;
          ] );
      ( "runtime-monitor",
        [
          Alcotest.test_case
            "the 71643 mutual-capture input heals under the freshness guard"
            `Quick test_mutual_capture_heals;
          Alcotest.test_case "the golden mutual-capture plan replays clean"
            `Quick test_mutual_capture_golden_plan;
        ] );
    ]
