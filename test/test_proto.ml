(* Tests for the shared protocol runtime (lib/proto).

   Two halves:

   1. Unit tests for [Proto.Softstate] — the generic two-deadline
      soft-state table: refresh ladders, timed marks, expiry sweeps and
      install-order iteration.  (Added with the runtime itself.)

   2. A seeded trace-equivalence oracle: on both paper topologies (ISP
      and the 50-node random graph), each protocol runs a fixed
      subscribe / converge / probe / crash / restart script and every
      data delivery is folded into a digest.  The digests below were
      captured BEFORE the protocols were ported onto [Proto.Session];
      the port must not move a single packet. *)

module Engine = Eventsim.Engine
module Faults = Experiments.Faults
module Common = Experiments.Common
module Ss = Proto.Softstate

(* ---- Softstate unit tests ---------------------------------------- *)

let dl = { Ss.t1 = 10.0; t2 = 25.0 }

let test_expiry_ladder () =
  let tb = Ss.Table.create () in
  let e = Ss.Table.add_fresh tb dl ~now:0.0 7 in
  Alcotest.(check bool) "fresh before t1" false (Ss.entry_stale e ~now:9.9);
  Alcotest.(check bool) "stale at t1" true (Ss.entry_stale e ~now:10.0);
  Alcotest.(check bool) "not yet dead" false (Ss.entry_dead e ~now:24.9);
  Alcotest.(check bool) "dead at t2" true (Ss.entry_dead e ~now:25.0);
  Ss.Table.expire tb ~now:24.9;
  Alcotest.(check int) "survives sweep before t2" 1 (Ss.Table.size tb);
  Ss.Table.expire tb ~now:25.0;
  Alcotest.(check int) "swept at t2" 0 (Ss.Table.size tb)

let test_refresh_restarts_deadlines () =
  let tb = Ss.Table.create () in
  ignore (Ss.Table.add_fresh tb dl ~now:0.0 3);
  Alcotest.(check bool) "refresh hits" true (Ss.Table.refresh tb dl ~now:20.0 3);
  let e = Option.get (Ss.Table.find tb 3) in
  Alcotest.(check bool) "fresh again" false (Ss.entry_stale e ~now:29.9);
  Alcotest.(check bool) "t2 pushed out" false (Ss.entry_dead e ~now:44.9);
  Alcotest.(check bool) "dies at the new t2" true (Ss.entry_dead e ~now:45.0);
  Alcotest.(check bool) "refresh misses absent" false
    (Ss.Table.refresh tb dl ~now:0.0 99)

let test_stale_insert_keeps_t1_expired () =
  let tb = Ss.Table.create () in
  let e = Ss.Table.add_stale tb dl ~now:0.0 4 in
  Alcotest.(check bool) "born stale" true (Ss.entry_stale e ~now:0.0);
  ignore (Ss.Table.add_stale tb dl ~now:5.0 4);
  Alcotest.(check bool) "re-add never downgrades t1" true
    (Ss.entry_stale e ~now:5.0);
  Alcotest.(check bool) "but t2 is refreshed" false (Ss.entry_dead e ~now:29.9)

let test_timed_mark_decays () =
  let tb = Ss.Table.create () in
  let e = Ss.Table.add_fresh tb dl ~now:0.0 5 in
  Alcotest.(check bool) "born unmarked" false (Ss.entry_marked e ~now:0.0);
  Alcotest.(check bool) "mark hits" true (Ss.Table.mark tb dl ~now:0.0 5);
  Alcotest.(check bool) "marked inside t1" true (Ss.entry_marked e ~now:9.9);
  Alcotest.(check bool) "mark decays at t1" false (Ss.entry_marked e ~now:10.0);
  Alcotest.(check (list int)) "data skips marked" []
    (Ss.Table.data_targets tb ~now:5.0);
  Alcotest.(check (list int)) "tree refresh keeps marked" [ 5 ]
    (Ss.Table.fresh_targets tb ~now:5.0);
  Alcotest.(check bool) "mark misses absent" false
    (Ss.Table.mark tb dl ~now:0.0 99)

let test_install_order_projections () =
  let tb = Ss.Table.create () in
  ignore (Ss.Table.add_fresh tb dl ~now:0.0 9);
  ignore (Ss.Table.add_fresh tb dl ~now:1.0 2);
  ignore (Ss.Table.add_fresh tb dl ~now:2.0 6);
  Alcotest.(check (list int)) "nodes ascending" [ 2; 6; 9 ] (Ss.Table.nodes tb);
  Alcotest.(check (list int)) "install order" [ 9; 2; 6 ]
    (List.map (fun (e : Ss.entry) -> e.Ss.node) (Ss.Table.in_order tb));
  Alcotest.(check (option int)) "oldest fresh" (Some 9)
    (Ss.Table.first_fresh tb ~now:5.0);
  Ss.Table.remove tb 9;
  Alcotest.(check (option int)) "next oldest after removal" (Some 2)
    (Ss.Table.first_fresh tb ~now:5.0)

let softstate_tests =
  [
    Alcotest.test_case "stale at t1, dead at t2, swept" `Quick test_expiry_ladder;
    Alcotest.test_case "refresh restarts both deadlines" `Quick
      test_refresh_restarts_deadlines;
    Alcotest.test_case "stale insert never downgrades t1" `Quick
      test_stale_insert_keeps_t1_expired;
    Alcotest.test_case "timed marks decay and gate data" `Quick
      test_timed_mark_decays;
    Alcotest.test_case "install-order projections" `Quick
      test_install_order_projections;
  ]

(* ---- Channel multiplexer ----------------------------------------- *)

(* Multi-channel sessions on one shared mux: dispatch is keyed by
   channel, so traffic, membership and delivery never leak between
   channels — even when the channels share a member host (one
   refcounted sink underneath). *)

let mux_channel ~source c =
  Mcast.Channel.make ~source
    ~group:(Mcast.Class_d.of_int32 (Int32.of_int (0xE8000000 + c + 1)))

let mux_pair () =
  let graph = Topology.Isp.create () in
  let table = Routing.Table.compute graph in
  let engine = Engine.create () in
  let net = Netsim.Network.create engine table in
  let source = Topology.Isp.source in
  let mx = Hbh.Protocol.mux net in
  let s c = Hbh.Protocol.create_mux ~channel:(mux_channel ~source c) mx ~source in
  (source, s 0, s 1)

let test_mux_shared_sink_isolation () =
  let _, a, b = mux_pair () in
  let shared = List.nth Topology.Isp.receiver_hosts 0 in
  let only_b = List.nth Topology.Isp.receiver_hosts 1 in
  Hbh.Protocol.subscribe a shared;
  Hbh.Protocol.subscribe b shared;
  Hbh.Protocol.subscribe b only_b;
  Hbh.Protocol.converge a;
  Alcotest.(check (list int)) "A's membership" [ shared ] (Hbh.Protocol.members a);
  Alcotest.(check (list int)) "B's membership"
    (List.sort compare [ shared; only_b ])
    (Hbh.Protocol.members b);
  let da = Hbh.Protocol.probe a in
  let db = Hbh.Protocol.probe b in
  Alcotest.(check (list int)) "A delivers to its member only" [ shared ]
    (Mcast.Distribution.receivers da);
  Alcotest.(check (list int)) "B delivers to both"
    (List.sort compare [ shared; only_b ])
    (Mcast.Distribution.receivers db)

let test_mux_unsubscribe_keeps_sibling_sink () =
  let _, a, b = mux_pair () in
  let shared = List.nth Topology.Isp.receiver_hosts 0 in
  Hbh.Protocol.subscribe a shared;
  Hbh.Protocol.subscribe b shared;
  Hbh.Protocol.converge a;
  Hbh.Protocol.unsubscribe a shared;
  (* Past t2 (550): A's soft state for the leaver is swept everywhere. *)
  Hbh.Protocol.run_for a 1200.0;
  Alcotest.(check (list int)) "A empty" [] (Hbh.Protocol.members a);
  let da = Hbh.Protocol.probe a in
  Alcotest.(check (list int)) "A delivers to nobody" []
    (Mcast.Distribution.receivers da);
  (* The refcounted sink must survive A's release: B still delivers. *)
  let db = Hbh.Protocol.probe b in
  Alcotest.(check (list int)) "B still delivers to the shared host"
    [ shared ]
    (Mcast.Distribution.receivers db)

let test_mux_matches_solo_session () =
  let members =
    List.filteri (fun i _ -> i < 5) Topology.Isp.receiver_hosts
  in
  let solo =
    let graph = Topology.Isp.create () in
    let table = Routing.Table.compute graph in
    Hbh.Protocol.create table ~source:Topology.Isp.source
  in
  List.iter (Hbh.Protocol.subscribe solo) members;
  Hbh.Protocol.converge solo;
  let d_solo = Hbh.Protocol.probe solo in
  let _, muxed, _idle = mux_pair () in
  List.iter (Hbh.Protocol.subscribe muxed) members;
  Hbh.Protocol.converge muxed;
  let d_mux = Hbh.Protocol.probe muxed in
  Alcotest.(check bool) "same tree shape as a solo session" true
    (Mcast.Distribution.equal_shape d_solo d_mux)

let test_mux_deterministic_rebuild () =
  let build () =
    let graph = Topology.Isp.create () in
    let table = Routing.Table.compute graph in
    let engine = Engine.create () in
    let net = Netsim.Network.create engine table in
    let source = Topology.Isp.source in
    let mx = Hbh.Protocol.mux net in
    let sessions =
      Array.init 4 (fun c ->
          Hbh.Protocol.create_mux ~channel:(mux_channel ~source c) mx ~source)
    in
    List.iteri
      (fun i h -> Hbh.Protocol.subscribe sessions.(i mod 4) h)
      Topology.Isp.receiver_hosts;
    Hbh.Protocol.converge sessions.(0);
    Array.map Hbh.Protocol.probe sessions
  in
  let r1 = build () and r2 = build () in
  Array.iteri
    (fun i d1 ->
      Alcotest.(check bool)
        (Printf.sprintf "channel %d rebuild-identical" i)
        true
        (Mcast.Distribution.equal_shape d1 r2.(i)))
    r1

let mux_tests =
  [
    Alcotest.test_case "shared member host, isolated channels" `Quick
      test_mux_shared_sink_isolation;
    Alcotest.test_case "unsubscribe keeps the sibling's sink" `Quick
      test_mux_unsubscribe_keeps_sibling_sink;
    Alcotest.test_case "muxed session matches solo session" `Quick
      test_mux_matches_solo_session;
    Alcotest.test_case "4-channel mux rebuilds identically" `Quick
      test_mux_deterministic_rebuild;
  ]

(* ---- Seeded trace equivalence ------------------------------------ *)

let probe_until = 700.0
let horizon = 1000.0

let fingerprint proto (config : Common.config) ~n =
  let rng = Stats.Rng.create 42 in
  let s =
    Workload.Scenario.make rng config.graph ~source:config.source
      ~candidates:config.candidates ~n
  in
  let receivers = List.sort compare s.Workload.Scenario.receivers in
  let crash_node =
    Faults.pick_crash_router s.Workload.Scenario.table
      ~source:s.Workload.Scenario.source ~receivers
  in
  let link =
    Faults.pick_tree_link s.Workload.Scenario.table
      ~source:s.Workload.Scenario.source ~receivers
  in
  let ops =
    Faults.ops_of proto
      (Topology.Graph.copy config.graph)
      ~source:s.Workload.Scenario.source
  in
  let buf = Buffer.create 4096 in
  ops.Faults.install_delivery (fun ~now ~receiver ~seq ->
      Buffer.add_string buf (Printf.sprintf "%.6f:%d:%d;" now receiver seq));
  List.iter ops.Faults.subscribe receivers;
  ops.Faults.converge ();
  let t0 = Engine.now ops.Faults.engine in
  ignore
    (Eventsim.Timer.every ~tag:"proto.test.probe" ops.Faults.engine ~start:0.0
       ~period:50.0 (fun () ->
         if Engine.now ops.Faults.engine -. t0 <= probe_until then
           ignore (ops.Faults.send_probe ())));
  ops.Faults.install_plan ~seed:42 (Faults.plan_of Faults.Crash ~crash_node ~link);
  ops.Faults.run_until (t0 +. horizon);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Delivery digests pinned from the pre-port protocol stacks.  The
   HBH and REUNITE digests were re-pinned when the route-epoch
   freshness guard landed (DESIGN.md §6b): the fingerprint script
   crashes and restarts a router, and post-reconvergence
   join-interception/capture now defers to the live tree instead of
   refreshing unvalidated entries.  PIM-SSM digests are untouched —
   its guard adoption is stamping only (joins are re-routed hop by
   hop, so join-installed state is always epoch-current). *)
let pinned =
  [
    ("HBH/isp", "5049f2068dfff60bf889a02ee4900b11");
    ("REUNITE/isp", "c23251c05b02f3949f12bcd5731b17e7");
    ("PIM-SSM/isp", "38bb2b3e8257dd584c05a587eba39fc2");
    ("HBH/rand50", "d69b5b5d563f1080f336e2f26a3044ab");
    ("REUNITE/rand50", "a5a9aae50128d3a40f323350acb44c36");
    ("PIM-SSM/rand50", "7438e27eea86080251f6f390e3377698");
    (* HPIM-DM digests pinned at introduction: the hard-state stack's
       crash-and-restart deliveries, frozen so later refactors of the
       reliable layer or the hello cycle cannot silently move a
       packet. *)
    ("HPIM-DM/isp", "fc4288c43bf2e4f85406fc195bbb1a9e");
    (* Equal to the PIM-SSM digest by construction, not by accident:
       on this topology both stacks forward along the same
       source-rooted shortest-path tree with no duplicate suppression
       needed, and the crash script repairs inside the same probe
       gap, so the delivered (time, receiver, seq) stream coincides
       packet for packet. *)
    ("HPIM-DM/rand50", "7438e27eea86080251f6f390e3377698");
  ]

let check_fingerprint proto config ~topo ~n () =
  let key = Printf.sprintf "%s/%s" (Faults.proto_name proto) topo in
  let got = fingerprint proto config ~n in
  Alcotest.(check string) key (List.assoc key pinned) got

let equivalence_tests =
  let isp = Common.isp_config () in
  let rand50 = Common.rand50_config ~seed:42 in
  List.map
    (fun (proto, config, topo, n) ->
      Alcotest.test_case
        (Printf.sprintf "%s deliveries unchanged on %s" (Faults.proto_name proto)
           topo)
        `Quick
        (check_fingerprint proto config ~topo ~n))
    [
      (Faults.P_hbh, isp, "isp", 8);
      (Faults.P_reunite, isp, "isp", 8);
      (Faults.P_pim_ssm, isp, "isp", 8);
      (Faults.P_hbh, rand50, "rand50", 15);
      (Faults.P_reunite, rand50, "rand50", 15);
      (Faults.P_pim_ssm, rand50, "rand50", 15);
      (Faults.P_hpim, isp, "isp", 8);
      (Faults.P_hpim, rand50, "rand50", 15);
    ]

let () =
  Alcotest.run "proto"
    [
      ("softstate", softstate_tests);
      ("mux", mux_tests);
      ("trace-equivalence", equivalence_tests);
    ]
