(* Tests for unicast routing: Dijkstra against Bellman-Ford and
   Floyd-Warshall, forwarding consistency, asymmetry measurement. *)

module G = Topology.Graph

let diamond () =
  (* 0 -- 1 -- 3 and 0 -- 2 -- 3 with asymmetric costs: the cheap way
     0->3 is via 1, the cheap way 3->0 is via 2. *)
  G.make
    ~kinds:(Array.make 4 G.Router)
    ~links:
      [
        (0, 1, 1, 9) (* cheap out, expensive back *);
        (1, 3, 1, 9);
        (0, 2, 9, 1);
        (2, 3, 9, 1);
      ]

let random_graph seed n =
  let rng = Stats.Rng.create seed in
  let g = Topology.Generators.random_connected ~hosts:false rng ~n ~avg_degree:3.0 in
  G.randomize_costs g rng ~lo:1 ~hi:10;
  g

(* ---- Dijkstra --------------------------------------------------------- *)

let test_dijkstra_trivial () =
  let g = diamond () in
  let t = Routing.Dijkstra.to_dest g 0 in
  Alcotest.(check int) "self distance" 0 (Routing.Dijkstra.distance t 0);
  Alcotest.(check bool) "no next hop at dest" true
    (Routing.Dijkstra.next_hop t 0 = None)

let test_dijkstra_asymmetric_paths () =
  let g = diamond () in
  let to3 = Routing.Dijkstra.to_dest g 3 in
  let to0 = Routing.Dijkstra.to_dest g 0 in
  Alcotest.(check (list int)) "0 -> 3 via 1" [ 0; 1; 3 ] (Routing.Dijkstra.path to3 0);
  Alcotest.(check (list int)) "3 -> 0 via 2" [ 3; 2; 0 ] (Routing.Dijkstra.path to0 3);
  Alcotest.(check int) "forward distance" 2 (Routing.Dijkstra.distance to3 0);
  Alcotest.(check int) "reverse distance" 2 (Routing.Dijkstra.distance to0 3)

let test_dijkstra_unreachable () =
  let g =
    G.make ~kinds:(Array.make 3 G.Router) ~links:[ (0, 1, 1, 1) ]
  in
  let t = Routing.Dijkstra.to_dest g 2 in
  Alcotest.(check bool) "0 cannot reach 2" false (Routing.Dijkstra.reachable t 0);
  Alcotest.check_raises "path raises"
    (Invalid_argument "Dijkstra.path: 0 cannot reach 2") (fun () ->
      ignore (Routing.Dijkstra.path t 0))

let test_dijkstra_tie_break_smallest_id () =
  (* Two equal-cost next hops 1 and 2 toward 3: hop via 1 chosen. *)
  let g =
    G.make
      ~kinds:(Array.make 4 G.Router)
      ~links:[ (0, 1, 1, 1); (0, 2, 1, 1); (1, 3, 1, 1); (2, 3, 1, 1) ]
  in
  let t = Routing.Dijkstra.to_dest g 3 in
  Alcotest.(check (option int)) "smallest id wins" (Some 1)
    (Routing.Dijkstra.next_hop t 0)

let test_dijkstra_matches_bellman_ford () =
  for seed = 1 to 10 do
    let g = random_graph seed 30 in
    let d = Stats.Rng.int (Stats.Rng.create seed) 30 in
    let dij = Routing.Dijkstra.to_dest g d in
    let bf = Routing.Bellman_ford.to_dest g d in
    for u = 0 to 29 do
      Alcotest.(check int)
        (Printf.sprintf "seed %d node %d" seed u)
        bf.dist.(u)
        (if Routing.Dijkstra.reachable dij u then Routing.Dijkstra.distance dij u
         else max_int)
    done
  done

let test_table_matches_floyd_warshall () =
  for seed = 1 to 5 do
    let g = random_graph (100 + seed) 20 in
    let table = Routing.Table.compute g in
    let fw = Routing.Floyd_warshall.compute g in
    for u = 0 to 19 do
      for v = 0 to 19 do
        let expected = Routing.Floyd_warshall.distance fw u v in
        let got =
          if Routing.Table.reachable table u v then Routing.Table.distance table u v
          else max_int
        in
        Alcotest.(check int) (Printf.sprintf "d(%d,%d)" u v) expected got
      done
    done
  done

(* ---- Table / forwarding consistency ----------------------------------- *)

let test_hop_by_hop_follows_path () =
  (* Walking next hops one at a time reproduces Table.path exactly —
     the property that makes the event simulator agree with the
     analytic builders. *)
  for seed = 1 to 5 do
    let g = random_graph (200 + seed) 25 in
    let table = Routing.Table.compute g in
    for u = 0 to 24 do
      for v = 0 to 24 do
        if u <> v && Routing.Table.reachable table u v then begin
          let rec walk w acc =
            if w = v then List.rev acc
            else
              match Routing.Table.next_hop table w ~dest:v with
              | Some next -> walk next (next :: acc)
              | None -> List.rev acc
          in
          Alcotest.(check (list int)) "hop-by-hop = path"
            (Routing.Table.path table u v)
            (walk u [ u ])
        end
      done
    done
  done

let test_path_cost_equals_distance () =
  let g = random_graph 300 25 in
  let table = Routing.Table.compute g in
  for u = 0 to 24 do
    for v = 0 to 24 do
      if u <> v then
        Alcotest.(check int) "sum of link costs = distance"
          (Routing.Table.distance table u v)
          (Routing.Path.cost g (Routing.Table.path table u v))
    done
  done

(* ---- Path utilities ---------------------------------------------------- *)

let test_path_links () =
  Alcotest.(check (list (pair int int))) "links" [ (1, 2); (2, 3) ]
    (Routing.Path.links [ 1; 2; 3 ]);
  Alcotest.(check (list (pair int int))) "singleton" [] (Routing.Path.links [ 7 ])

let test_path_delay_directional () =
  let g = diamond () in
  Alcotest.(check (float 0.0)) "forward" 2.0 (Routing.Path.delay g [ 0; 1; 3 ]);
  Alcotest.(check (float 0.0)) "backward" 18.0 (Routing.Path.delay g [ 3; 1; 0 ])

let test_path_valid () =
  let g = diamond () in
  Alcotest.(check bool) "valid" true (Routing.Path.valid g [ 0; 1; 3 ]);
  Alcotest.(check bool) "non-adjacent" false (Routing.Path.valid g [ 0; 3 ]);
  Alcotest.(check bool) "repeated node" false (Routing.Path.valid g [ 0; 1; 0 ])

let test_path_hops () =
  Alcotest.(check int) "hops" 2 (Routing.Path.hops [ 0; 1; 3 ]);
  Alcotest.(check int) "empty" 0 (Routing.Path.hops [])

(* ---- Bellman-Ford extras ----------------------------------------------- *)

let test_bellman_ford_iterations_bounded () =
  let g = random_graph 400 30 in
  let r = Routing.Bellman_ford.to_dest g 0 in
  Alcotest.(check bool) "terminates within n+1 rounds" true (r.iterations <= 31)

(* ---- Asymmetry --------------------------------------------------------- *)

let test_asymmetry_symmetric_graph () =
  let g = Topology.Isp.create () in
  (* Unit costs: all routes symmetric up to tie-breaking, and the
     deterministic tie-break is identical in both directions only if
     paths are unique; measure on unit costs perturbed to be unique. *)
  G.symmetrize_costs g;
  let table = Routing.Table.compute g in
  let r = Routing.Asymmetry.measure table in
  Alcotest.(check (float 0.0)) "zero delay gap on symmetric costs" 0.0
    r.mean_delay_gap

let test_asymmetry_random_costs () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 7 in
  G.randomize_costs g rng ~lo:1 ~hi:10;
  let table = Routing.Table.compute g in
  let r = Routing.Asymmetry.measure table in
  Alcotest.(check bool) "many asymmetric routes" true (r.asymmetric_fraction > 0.2);
  Alcotest.(check bool) "pairs counted" true (r.pairs = 18 * 17 / 2)

let test_pair_asymmetric_diamond () =
  let g = diamond () in
  let table = Routing.Table.compute g in
  Alcotest.(check bool) "0-3 asymmetric" true
    (Routing.Asymmetry.pair_asymmetric table 0 3)

(* ---- Link-state IGP ------------------------------------------------------ *)

let converge_ls g =
  let engine = Eventsim.Engine.create () in
  let ls = Routing.Link_state.create engine g in
  Routing.Link_state.start ls;
  Eventsim.Engine.run engine;
  (engine, ls)

let test_link_state_converges () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 5 in
  G.randomize_costs g rng ~lo:1 ~hi:10;
  let _, ls = converge_ls g in
  Alcotest.(check bool) "flooding converged" true (Routing.Link_state.converged ls);
  let s = Routing.Link_state.stats ls in
  Alcotest.(check int) "one LSA per router" 18 s.lsas_originated;
  Alcotest.(check bool) "flooding used messages" true (s.messages_sent > 18)

let test_link_state_agrees_with_centralized () =
  for seed = 1 to 5 do
    let g = random_graph (500 + seed) 15 in
    let _, ls = converge_ls g in
    let table = Routing.Table.compute g in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d distributed = centralized" seed)
      true
      (Routing.Link_state.agrees_with_table ls table)
  done

let test_link_state_host_destinations () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 9 in
  G.randomize_costs g rng ~lo:1 ~hi:10;
  let _, ls = converge_ls g in
  let table = Routing.Table.compute g in
  (* Routes toward hosts (announced as router stub links) agree too. *)
  List.iter
    (fun h ->
      Alcotest.(check (option int))
        (Printf.sprintf "next hop of router 5 toward host %d" h)
        (Routing.Table.next_hop table 5 ~dest:h)
        (Routing.Link_state.next_hop ls 5 ~dest:h))
    (G.hosts g)

let test_link_state_reconvergence () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 11 in
  G.randomize_costs g rng ~lo:1 ~hi:10;
  let engine, ls = converge_ls g in
  (* Change a link cost; stale LSDBs disagree until re-origination. *)
  G.set_cost g 0 12 99;
  Routing.Link_state.reoriginate ls 0;
  Eventsim.Engine.run engine;
  Alcotest.(check bool) "re-converged" true (Routing.Link_state.converged ls);
  let table = Routing.Table.compute g in
  Alcotest.(check bool) "agrees after change" true
    (Routing.Link_state.agrees_with_table ls table)

let test_link_state_distance_matches () =
  let g = random_graph 600 12 in
  let _, ls = converge_ls g in
  let table = Routing.Table.compute g in
  for u = 0 to 11 do
    for v = 0 to 11 do
      let expected =
        if Routing.Table.reachable table u v then
          Some (Routing.Table.distance table u v)
        else None
      in
      Alcotest.(check (option int))
        (Printf.sprintf "d(%d,%d)" u v)
        expected
        (Routing.Link_state.distance ls u v)
    done
  done

(* ---- Properties -------------------------------------------------------- *)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"distances satisfy triangle inequality" ~count:30
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = random_graph seed 15 in
      let table = Routing.Table.compute g in
      let ok = ref true in
      for u = 0 to 14 do
        for v = 0 to 14 do
          for w = 0 to 14 do
            let d a b = Routing.Table.distance table a b in
            if d u v > d u w + d w v then ok := false
          done
        done
      done;
      !ok)

let prop_path_endpoints =
  QCheck.Test.make ~name:"paths start and end correctly" ~count:30
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = random_graph seed 15 in
      let table = Routing.Table.compute g in
      let ok = ref true in
      for u = 0 to 14 do
        for v = 0 to 14 do
          let p = Routing.Table.path table u v in
          if List.hd p <> u then ok := false;
          if List.nth p (List.length p - 1) <> v then ok := false;
          if not (Routing.Path.valid g p) then ok := false
        done
      done;
      !ok)

(* The lazy table's contract: after any mix of queries, link flaps
   (edge-targeted invalidation on failures and cost increases, full
   invalidation on restores and arbitrary cost redraws) the surviving
   cache answers exactly like a table computed from scratch on the
   current graph. *)
let prop_lazy_table_matches_fresh =
  QCheck.Test.make ~name:"lazy table = from-scratch after any mutations"
    ~count:30
    QCheck.(int_range 0 1000)
    (fun seed ->
      let n = 12 in
      let g = random_graph seed n in
      let rng = Stats.Rng.create (seed + 1) in
      let table = Routing.Table.compute g in
      let ok = ref true in
      let check_all () =
        let fresh = Routing.Table.compute g in
        for d = 0 to n - 1 do
          for u = 0 to n - 1 do
            if
              Routing.Table.next_hop table u ~dest:d
              <> Routing.Table.next_hop fresh u ~dest:d
            then ok := false
          done
        done
      in
      let random_link () =
        let links = G.links g in
        List.nth links (Stats.Rng.int rng (List.length links))
      in
      for step = 1 to 25 do
        (match Stats.Rng.int rng 5 with
        | 0 -> ignore (Routing.Table.in_tree table (Stats.Rng.int rng n))
        | 1 ->
            let l = random_link () in
            if l.G.up then begin
              G.set_link_up g l.G.u l.G.v false;
              ignore (Routing.Table.invalidate_edge table l.G.u l.G.v)
            end
        | 2 -> (
            match G.down_links g with
            | [] -> ()
            | (u, v) :: _ ->
                (* A restore can improve any route: full invalidation
                   is the documented requirement. *)
                G.set_link_up g u v true;
                Routing.Table.invalidate_all table)
        | 3 ->
            (* Worsening a cost keeps edge-targeted invalidation
               exact. *)
            let l = random_link () in
            G.set_cost g l.G.u l.G.v
              (G.cost g l.G.u l.G.v + 1 + Stats.Rng.int rng 5);
            ignore (Routing.Table.invalidate_edge table l.G.u l.G.v)
        | _ ->
            let l = random_link () in
            G.set_cost g l.G.u l.G.v (1 + Stats.Rng.int rng 10);
            Routing.Table.invalidate_all table);
        if step mod 5 = 0 then check_all ()
      done;
      check_all ();
      !ok)

let prop_link_state_cache_consistent =
  QCheck.Test.make ~name:"LSDB SPF cache consistent across refloods"
    ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let n = 10 in
      let g = random_graph seed n in
      let engine, ls = converge_ls g in
      let rng = Stats.Rng.create (seed + 2) in
      let ok = ref true in
      for _ = 1 to 3 do
        (* Warm every router's memo, then invalidate it by changing a
           cost and reflooding: stale cached SPF answers would split
           the routers from the centralized table. *)
        for r = 0 to n - 1 do
          for d = 0 to n - 1 do
            ignore (Routing.Link_state.next_hop ls r ~dest:d)
          done
        done;
        let links = G.links g in
        let l = List.nth links (Stats.Rng.int rng (List.length links)) in
        G.set_cost g l.G.u l.G.v (1 + Stats.Rng.int rng 10);
        Routing.Link_state.reoriginate ls l.G.u;
        Eventsim.Engine.run engine;
        if
          not
            (Routing.Link_state.agrees_with_table ls (Routing.Table.compute g))
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "routing"
    [
      ( "dijkstra",
        [
          Alcotest.test_case "trivial" `Quick test_dijkstra_trivial;
          Alcotest.test_case "asymmetric paths" `Quick test_dijkstra_asymmetric_paths;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "tie break" `Quick test_dijkstra_tie_break_smallest_id;
          Alcotest.test_case "matches bellman-ford" `Quick test_dijkstra_matches_bellman_ford;
          Alcotest.test_case "table matches floyd-warshall" `Quick
            test_table_matches_floyd_warshall;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "hop-by-hop consistency" `Quick test_hop_by_hop_follows_path;
          Alcotest.test_case "path cost = distance" `Quick test_path_cost_equals_distance;
        ] );
      ( "path",
        [
          Alcotest.test_case "links" `Quick test_path_links;
          Alcotest.test_case "directional delay" `Quick test_path_delay_directional;
          Alcotest.test_case "validity" `Quick test_path_valid;
          Alcotest.test_case "hops" `Quick test_path_hops;
        ] );
      ( "bellman-ford",
        [ Alcotest.test_case "iteration bound" `Quick test_bellman_ford_iterations_bounded ] );
      ( "link-state",
        [
          Alcotest.test_case "converges" `Quick test_link_state_converges;
          Alcotest.test_case "agrees with centralized" `Quick
            test_link_state_agrees_with_centralized;
          Alcotest.test_case "host destinations" `Quick test_link_state_host_destinations;
          Alcotest.test_case "reconvergence" `Quick test_link_state_reconvergence;
          Alcotest.test_case "distances" `Quick test_link_state_distance_matches;
        ] );
      ( "asymmetry",
        [
          Alcotest.test_case "symmetric graph" `Quick test_asymmetry_symmetric_graph;
          Alcotest.test_case "random costs" `Quick test_asymmetry_random_costs;
          Alcotest.test_case "diamond pair" `Quick test_pair_asymmetric_diamond;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_triangle_inequality;
            prop_path_endpoints;
            prop_lazy_table_matches_fresh;
            prop_link_state_cache_consistent;
          ] );
    ]
