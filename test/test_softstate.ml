(* Soft-state expiry under suppressed refreshes: when the control
   plane goes silent (every join dropped at the wire), MFT entries
   must walk the paper's two-deadline ladder — stale at t1, destroyed
   at t2 — and REUNITE's source table must decay away entirely.  The
   drop filter stands in for an arbitrary control-plane outage; data
   keeps flowing until the state actually dies, which is the whole
   point of the two-deadline design. *)

module Net = Netsim.Network
module Pkt = Netsim.Packet

let isp_scenario n =
  let config = Experiments.Common.isp_config () in
  let rng = Stats.Rng.create 7 in
  Workload.Scenario.make rng config.Experiments.Common.graph
    ~source:config.Experiments.Common.source
    ~candidates:config.Experiments.Common.candidates ~n

let hbh_join_drop () =
  let s = isp_scenario 6 in
  let sess = Hbh.Protocol.create s.Workload.Scenario.table ~source:s.Workload.Scenario.source in
  List.iter (Hbh.Protocol.subscribe sess) s.Workload.Scenario.receivers;
  Hbh.Protocol.converge ~periods:12 sess;
  (sess, Hbh.Protocol.network sess)

let check_mft_ladder ~what mft ~engine ~run =
  let cfg = Hbh.Protocol.default_config in
  let entries () = Hbh.Tables.Mft.entries mft in
  Alcotest.(check bool) (what ^ ": populated") false (entries () = []);
  let nw () = Eventsim.Engine.now engine in
  Alcotest.(check bool)
    (what ^ ": fresh before the outage bites")
    true
    (List.exists (fun e -> not (Hbh.Tables.entry_stale e ~now:(nw ()))) (entries ()));
  (* Past t1 with no refreshes: every entry stale, none dead yet would
     be too strong (staggered refresh times), but all must be stale. *)
  run (cfg.t1 +. 1.0);
  Alcotest.(check bool)
    (what ^ ": all stale past t1")
    true
    (List.for_all (fun e -> Hbh.Tables.entry_stale e ~now:(nw ())) (entries ()));
  Alcotest.(check bool)
    (what ^ ": still alive at t1 (data keeps flowing)")
    true
    (List.exists (fun e -> not (Hbh.Tables.entry_dead e ~now:(nw ()))) (entries ()));
  (* Past t2: destroyed. *)
  run (cfg.t2 -. cfg.t1 +. 1.0);
  Alcotest.(check bool)
    (what ^ ": all dead past t2")
    true
    (List.for_all (fun e -> Hbh.Tables.entry_dead e ~now:(nw ())) (entries ()))

let test_hbh_source_mft_decay () =
  let sess, net = hbh_join_drop () in
  Net.set_drop_filter net
    (Some
       (fun p ->
         match p.Pkt.payload with Hbh.Messages.Join _ -> true | _ -> false));
  check_mft_ladder ~what:"source MFT" (Hbh.Protocol.source_table sess)
    ~engine:(Hbh.Protocol.engine sess)
    ~run:(Hbh.Protocol.run_for sess)

let test_hbh_branching_mft_decay () =
  let sess, net = hbh_join_drop () in
  let branching =
    match Hbh.Protocol.branching_routers sess with
    | b :: _ -> b
    | [] -> Alcotest.fail "no branching router on the ISP scenario"
  in
  let mft =
    match Hbh.Tables.find (Hbh.Protocol.router_tables sess branching)
            (Hbh.Protocol.channel sess)
    with
    | Hbh.Tables.Forwarding mft -> mft
    | _ -> Alcotest.fail "branching router lost its MFT"
  in
  (* Drop every control message: joins, trees and fusions all gone —
     the total-outage variant. *)
  Net.set_drop_filter net (Some (fun p -> p.Pkt.kind = Pkt.Control));
  check_mft_ladder ~what:"branching MFT" mft
    ~engine:(Hbh.Protocol.engine sess)
    ~run:(Hbh.Protocol.run_for sess)

let test_reunite_source_decay () =
  let s = isp_scenario 6 in
  let sess =
    Reunite.Protocol.create s.Workload.Scenario.table
      ~source:s.Workload.Scenario.source
  in
  List.iter (Reunite.Protocol.subscribe sess) s.Workload.Scenario.receivers;
  Reunite.Protocol.converge ~periods:12 sess;
  Alcotest.(check bool) "source table built" true
    (Reunite.Protocol.source_table sess <> None);
  let net = Reunite.Protocol.network sess in
  Net.set_drop_filter net
    (Some
       (fun p ->
         match p.Pkt.payload with
         | Reunite.Messages.Join _ -> true
         | _ -> false));
  let cfg = Reunite.Protocol.default_config in
  Reunite.Protocol.run_for sess (cfg.Reunite.Protocol.t2 +. 1.0);
  let nw = Eventsim.Engine.now (Reunite.Protocol.engine sess) in
  let decayed =
    match Reunite.Protocol.source_table sess with
    | None -> true
    | Some mft ->
        Reunite.Tables.entry_dead (Reunite.Tables.Mft.dst mft) ~now:nw
  in
  Alcotest.(check bool) "source table decayed by t2" true decayed

let () =
  Alcotest.run "softstate"
    [
      ( "expiry",
        [
          Alcotest.test_case "HBH source MFT: stale at t1, dead at t2" `Quick
            test_hbh_source_mft_decay;
          Alcotest.test_case "HBH branching MFT under total control outage"
            `Quick test_hbh_branching_mft_decay;
          Alcotest.test_case "REUNITE source table decays by t2" `Quick
            test_reunite_source_decay;
        ] );
    ]
