(* Tests for the stats library: RNG determinism and distribution
   sanity, Welford summaries, series bookkeeping and rendering. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Stats.Rng.create 1234 and b = Stats.Rng.create 1234 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Stats.Rng.create 1 and b = Stats.Rng.create 2 in
  let va = List.init 8 (fun _ -> Stats.Rng.bits64 a) in
  let vb = List.init 8 (fun _ -> Stats.Rng.bits64 b) in
  Alcotest.(check bool) "different seeds differ" true (va <> vb)

let test_rng_copy () =
  let a = Stats.Rng.create 7 in
  ignore (Stats.Rng.bits64 a);
  let b = Stats.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Stats.Rng.bits64 a)
    (Stats.Rng.bits64 b)

let test_rng_split_independent () =
  let a = Stats.Rng.create 7 in
  let child = Stats.Rng.split a in
  let va = List.init 8 (fun _ -> Stats.Rng.bits64 a) in
  let vc = List.init 8 (fun _ -> Stats.Rng.bits64 child) in
  Alcotest.(check bool) "split streams differ" true (va <> vc)

let test_rng_int_bounds () =
  let rng = Stats.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Stats.Rng.int rng 10 in
    Alcotest.(check bool) "0 <= v < 10" true (v >= 0 && v < 10)
  done

let test_rng_int_invalid () =
  let rng = Stats.Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Stats.Rng.int rng 0))

let test_rng_int_in_range () =
  let rng = Stats.Rng.create 5 in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    let v = Stats.Rng.int_in rng 1 10 in
    Alcotest.(check bool) "1 <= v <= 10" true (v >= 1 && v <= 10);
    seen.(v - 1) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 10k draws, each within 3x of
     the expected 1000. *)
  let rng = Stats.Rng.create 11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Stats.Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket roughly uniform" true (c > 800 && c < 1200))
    buckets

let test_rng_float_bounds () =
  let rng = Stats.Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Stats.Rng.float rng 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_mean () =
  let rng = Stats.Rng.create 17 in
  let s = Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Stats.Summary.add s (Stats.Rng.exponential rng 4.0)
  done;
  let m = Stats.Summary.mean s in
  Alcotest.(check bool) "mean near 4" true (m > 3.8 && m < 4.2)

let test_rng_sample_distinct () =
  let rng = Stats.Rng.create 19 in
  for _ = 1 to 100 do
    let s = Stats.Rng.sample rng 5 10 in
    Alcotest.(check int) "5 values" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter
      (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 10))
      s
  done

let test_rng_sample_all () =
  let rng = Stats.Rng.create 23 in
  let s = List.sort compare (Stats.Rng.sample rng 6 6) in
  Alcotest.(check (list int)) "permutation of 0..5" [ 0; 1; 2; 3; 4; 5 ] s

let test_rng_sample_invalid () =
  let rng = Stats.Rng.create 23 in
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample: need 0 <= k <= n")
    (fun () -> ignore (Stats.Rng.sample rng 7 6))

let test_rng_shuffle_permutes () =
  let rng = Stats.Rng.create 29 in
  let a = Array.init 20 Fun.id in
  Stats.Rng.shuffle rng a;
  Alcotest.(check (list int)) "same multiset" (List.init 20 Fun.id)
    (List.sort compare (Array.to_list a))

(* Pinned draws: these exact values must survive refactors of pick
   and sample — simulation results are reproduced from seeds alone. *)
let test_rng_pick_pinned () =
  let t = Stats.Rng.create 7 in
  Alcotest.(check (list int))
    "seeded picks stable" [ 30; 50; 10; 30; 50; 10 ]
    (List.init 6 (fun _ -> Stats.Rng.pick t [ 10; 20; 30; 40; 50 ]));
  (* A singleton pick still consumes exactly one draw, so the stream
     position afterwards is part of the contract. *)
  let t = Stats.Rng.create 7 in
  Alcotest.(check int) "singleton" 99 (Stats.Rng.pick t [ 99 ]);
  Alcotest.(check int) "stream position after singleton" 14
    (Stats.Rng.int t 100)

let test_rng_sample_pinned () =
  Alcotest.(check (list int))
    "dense path stable" [ 7; 3; 1; 0; 4 ]
    (Stats.Rng.sample (Stats.Rng.create 11) 5 9);
  Alcotest.(check (list int))
    "sparse path stable"
    [ 4710; 2159; 3573; 4197; 2165; 4529; 3597; 3198 ]
    (Stats.Rng.sample (Stats.Rng.create 11) 8 5000)

(* The dense partial Fisher-Yates, replicated verbatim: the sparse
   (hash-map) branch sample takes for k << n must be draw-for-draw and
   element-for-element identical to it. *)
let dense_sample seed k n =
  let t = Stats.Rng.create seed in
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Stats.Rng.int t (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)

let test_rng_sample_sparse_matches_dense () =
  List.iter
    (fun (seed, k, n) ->
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d k=%d n=%d" seed k n)
        (dense_sample seed k n)
        (Stats.Rng.sample (Stats.Rng.create seed) k n))
    [ (11, 8, 5000); (0, 1, 2000); (99, 255, 4096); (5, 0, 1500); (3, 64, 100_000) ]

let test_rng_pick () =
  let rng = Stats.Rng.create 31 in
  for _ = 1 to 50 do
    let v = Stats.Rng.pick rng [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Stats.Rng.pick rng []))

(* ---- Summary ---------------------------------------------------------- *)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check int) "count" 0 (Stats.Summary.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Summary.mean s))

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Stats.Summary.mean s);
  check_float "variance" 4.571428571428571 (Stats.Summary.variance s);
  check_float "min" 2.0 (Stats.Summary.min s);
  check_float "max" 9.0 (Stats.Summary.max s);
  check_float "total" 40.0 (Stats.Summary.total s)

let test_summary_single () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 3.5;
  check_float "mean" 3.5 (Stats.Summary.mean s);
  Alcotest.(check bool) "variance nan with n=1" true
    (Float.is_nan (Stats.Summary.variance s))

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let all = Stats.Summary.create () in
  let rng = Stats.Rng.create 37 in
  for i = 1 to 1000 do
    let v = Stats.Rng.float rng 10.0 in
    Stats.Summary.add all v;
    Stats.Summary.add (if i mod 3 = 0 then a else b) v
  done;
  let m = Stats.Summary.merge a b in
  Alcotest.(check int) "count" 1000 (Stats.Summary.count m);
  check_float "mean matches" (Stats.Summary.mean all) (Stats.Summary.mean m);
  Alcotest.(check (float 1e-6)) "variance matches" (Stats.Summary.variance all)
    (Stats.Summary.variance m)

let test_summary_ci_shrinks () =
  let small = Stats.Summary.create () and large = Stats.Summary.create () in
  let rng = Stats.Rng.create 41 in
  for i = 1 to 10_000 do
    let v = Stats.Rng.float rng 1.0 in
    if i <= 100 then Stats.Summary.add small v;
    Stats.Summary.add large v
  done;
  Alcotest.(check bool) "ci95 shrinks with n" true
    (Stats.Summary.ci95 large < Stats.Summary.ci95 small)

(* ---- Series ----------------------------------------------------------- *)

let test_series_points_sorted () =
  let s = Stats.Series.create "x" in
  Stats.Series.observe s ~x:10 1.0;
  Stats.Series.observe s ~x:2 2.0;
  Stats.Series.observe s ~x:5 3.0;
  Alcotest.(check (list int)) "sorted xs" [ 2; 5; 10 ] (Stats.Series.xs s)

let test_series_mean_accumulates () =
  let s = Stats.Series.create "x" in
  Stats.Series.observe s ~x:1 2.0;
  Stats.Series.observe s ~x:1 4.0;
  check_float "mean at x" 3.0 (Stats.Series.mean_at s ~x:1);
  Alcotest.(check bool) "missing x is nan" true
    (Float.is_nan (Stats.Series.mean_at s ~x:99))

let test_series_ratio () =
  let a = Stats.Series.create "A" and b = Stats.Series.create "B" in
  List.iter
    (fun x ->
      Stats.Series.observe a ~x 10.0;
      Stats.Series.observe b ~x 5.0)
    [ 1; 2; 3 ];
  let g = Stats.Series.group [ a; b ] in
  List.iter
    (fun (_, r) -> check_float "ratio 2" 2.0 r)
    (Stats.Series.ratio g ~num:"A" ~den:"B")

let test_series_ratio_missing () =
  let a = Stats.Series.create "A" in
  let g = Stats.Series.group [ a ] in
  Alcotest.check_raises "unknown series" Not_found (fun () ->
      ignore (Stats.Series.ratio g ~num:"A" ~den:"Z"))

let test_series_csv () =
  let a = Stats.Series.create "A" in
  Stats.Series.observe a ~x:1 2.0;
  let g = Stats.Series.group ~x_label:"n" [ a ] in
  let csv = Stats.Series.to_csv g in
  Alcotest.(check bool) "header" true
    (String.length csv > 4 && String.sub csv 0 4 = "n,A\n")

let test_series_render_no_crash () =
  let a = Stats.Series.create "A" and b = Stats.Series.create "B" in
  Stats.Series.observe a ~x:1 1.0;
  Stats.Series.observe b ~x:2 2.0;
  let g = Stats.Series.group ~title:"t" ~x_label:"x" ~y_label:"y" [ a; b ] in
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Stats.Series.render ppf g;
  Stats.Series.render_ci ppf g;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "rendered something" true (Buffer.length buf > 0)

(* ---- Table ------------------------------------------------------------ *)

let test_table_alignment () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Stats.Table.render ppf ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ];
  Format.pp_print_flush ppf ();
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.(check bool) "4 lines (hdr, rule, 2 rows)" true
    (List.length (List.filter (fun l -> l <> "") lines) = 4)

(* ---- Properties ------------------------------------------------------- *)

let prop_summary_mean_in_range =
  QCheck.Test.make ~name:"summary mean within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      Stats.Summary.mean s >= Stats.Summary.min s -. 1e-9
      && Stats.Summary.mean s <= Stats.Summary.max s +. 1e-9)

let prop_summary_merge_commutes =
  QCheck.Test.make ~name:"summary merge commutes" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 20) (float_range (-10.) 10.))
        (list_of_size Gen.(1 -- 20) (float_range (-10.) 10.)))
    (fun (xs, ys) ->
      let mk l =
        let s = Stats.Summary.create () in
        List.iter (Stats.Summary.add s) l;
        s
      in
      let m1 = Stats.Summary.merge (mk xs) (mk ys) in
      let m2 = Stats.Summary.merge (mk ys) (mk xs) in
      Float.abs (Stats.Summary.mean m1 -. Stats.Summary.mean m2) < 1e-9
      && Stats.Summary.count m1 = Stats.Summary.count m2)

let prop_rng_sample_distinct =
  QCheck.Test.make ~name:"sample yields distinct in-range values" ~count:200
    QCheck.(pair (int_range 0 20) (int_range 1 100))
    (fun (k, extra) ->
      let n = k + (extra mod 30) in
      let rng = Stats.Rng.create (k + (n * 1000)) in
      let s = Stats.Rng.sample rng k n in
      List.length s = k
      && List.length (List.sort_uniq compare s) = k
      && List.for_all (fun v -> v >= 0 && v < n) s)

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "sample all" `Quick test_rng_sample_all;
          Alcotest.test_case "sample invalid" `Quick test_rng_sample_invalid;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "pick pinned" `Quick test_rng_pick_pinned;
          Alcotest.test_case "sample pinned" `Quick test_rng_sample_pinned;
          Alcotest.test_case "sample sparse = dense" `Quick
            test_rng_sample_sparse_matches_dense;
        ] );
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "basic moments" `Quick test_summary_basic;
          Alcotest.test_case "single value" `Quick test_summary_single;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "ci shrinks" `Quick test_summary_ci_shrinks;
        ] );
      ( "series",
        [
          Alcotest.test_case "points sorted" `Quick test_series_points_sorted;
          Alcotest.test_case "mean accumulates" `Quick test_series_mean_accumulates;
          Alcotest.test_case "ratio" `Quick test_series_ratio;
          Alcotest.test_case "ratio missing" `Quick test_series_ratio_missing;
          Alcotest.test_case "csv header" `Quick test_series_csv;
          Alcotest.test_case "render" `Quick test_series_render_no_crash;
        ] );
      ( "table",
        [ Alcotest.test_case "alignment" `Quick test_table_alignment ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_summary_mean_in_range;
            prop_summary_merge_commutes;
            prop_rng_sample_distinct;
          ] );
    ]
