(* Tests for graph construction, the encoded ISP topology and the
   random generators. *)

module G = Topology.Graph

let triangle () =
  G.make
    ~kinds:[| G.Router; G.Router; G.Router |]
    ~links:[ (0, 1, 2, 3); (1, 2, 4, 5); (0, 2, 6, 7) ]

(* ---- Graph core ------------------------------------------------------- *)

let test_counts () =
  let g = triangle () in
  Alcotest.(check int) "nodes" 3 (G.node_count g);
  Alcotest.(check int) "links" 3 (G.link_count g)

let test_directed_costs () =
  let g = triangle () in
  Alcotest.(check int) "cost 0->1" 2 (G.cost g 0 1);
  Alcotest.(check int) "cost 1->0" 3 (G.cost g 1 0);
  Alcotest.(check int) "cost 2->0" 7 (G.cost g 2 0)

let test_delay_defaults_to_cost () =
  let g = triangle () in
  Alcotest.(check (float 0.0)) "delay 0->1" 2.0 (G.delay g 0 1);
  Alcotest.(check (float 0.0)) "delay 1->0" 3.0 (G.delay g 1 0)

let test_set_cost () =
  let g = triangle () in
  G.set_cost g 0 1 9;
  Alcotest.(check int) "updated" 9 (G.cost g 0 1);
  Alcotest.(check int) "reverse untouched" 3 (G.cost g 1 0)

let test_missing_link () =
  let g =
    G.make ~kinds:[| G.Router; G.Router; G.Router |] ~links:[ (0, 1, 1, 1) ]
  in
  Alcotest.(check bool) "no 0-2 link" false (G.connected g 0 2);
  Alcotest.check_raises "cost raises" (Invalid_argument "Graph: no link 0-2")
    (fun () -> ignore (G.cost g 0 2))

let test_neighbors_sorted () =
  let g =
    G.make
      ~kinds:(Array.make 4 G.Router)
      ~links:[ (0, 3, 1, 1); (0, 1, 1, 1); (0, 2, 1, 1) ]
  in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3 ] (G.neighbors g 0)

let test_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.make: self-loop")
    (fun () ->
      ignore (G.make ~kinds:[| G.Router |] ~links:[ (0, 0, 1, 1) ]))

let test_rejects_duplicate_link () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.make: duplicate link 1-0") (fun () ->
      ignore
        (G.make
           ~kinds:[| G.Router; G.Router |]
           ~links:[ (0, 1, 1, 1); (1, 0, 2, 2) ]))

let test_rejects_multihomed_host () =
  Alcotest.check_raises "host with 2 links"
    (Invalid_argument "Graph.make: host 2 must have exactly one link")
    (fun () ->
      ignore
        (G.make
           ~kinds:[| G.Router; G.Router; G.Host |]
           ~links:[ (0, 1, 1, 1); (0, 2, 1, 1); (1, 2, 1, 1) ]))

let test_host_router_mapping () =
  let b = Topology.Builder.create () in
  let r0 = Topology.Builder.add_router b in
  let r1 = Topology.Builder.add_router b in
  Topology.Builder.add_link b r0 r1 ();
  let h = Topology.Builder.add_host b ~router:r1 () in
  let g = Topology.Builder.build b in
  Alcotest.(check int) "router of host" r1 (G.router_of_host g h);
  Alcotest.(check (list int)) "hosts of router" [ h ] (G.hosts_of_router g r1);
  Alcotest.check_raises "router_of_host on router"
    (Invalid_argument "Graph.router_of_host: 0 is not a host") (fun () ->
      ignore (G.router_of_host g r0))

let test_randomize_costs () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 1 in
  G.randomize_costs g rng ~lo:1 ~hi:10;
  List.iter
    (fun (l : G.link) ->
      Alcotest.(check bool) "uv in range" true (l.cost_uv >= 1 && l.cost_uv <= 10);
      Alcotest.(check bool) "vu in range" true (l.cost_vu >= 1 && l.cost_vu <= 10);
      Alcotest.(check (float 0.0)) "delay = cost" (float_of_int l.cost_uv) l.delay_uv)
    (G.links g)

let test_symmetrize () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 1 in
  G.randomize_costs g rng ~lo:1 ~hi:10;
  G.symmetrize_costs g;
  Alcotest.(check (float 0.0)) "no asymmetric links" 0.0
    (G.asymmetric_link_fraction g)

let test_asymmetric_fraction_nonzero () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 1 in
  G.randomize_costs g rng ~lo:1 ~hi:10;
  (* With 48 links and 1/10 chance of equality per link, some
     asymmetry is (overwhelmingly) certain. *)
  Alcotest.(check bool) "mostly asymmetric" true
    (G.asymmetric_link_fraction g > 0.5)

let test_multicast_capability_flag () =
  let g = Topology.Isp.create () in
  Alcotest.(check bool) "default capable" true (G.multicast_capable g 0);
  G.set_multicast_capable g 0 false;
  Alcotest.(check bool) "flag cleared" false (G.multicast_capable g 0)

let test_copy_independent () =
  let g = Topology.Isp.create () in
  let g2 = G.copy g in
  G.set_cost g 0 12 99;
  Alcotest.(check bool) "copies diverge" true (G.cost g2 0 12 <> 99 || G.cost g 0 12 = G.cost g2 0 12)

(* ---- ISP topology ----------------------------------------------------- *)

let test_isp_shape () =
  let g = Topology.Isp.create () in
  Alcotest.(check int) "36 nodes" 36 (G.node_count g);
  Alcotest.(check int) "18 routers" 18 (List.length (G.routers g));
  Alcotest.(check int) "18 hosts" 18 (List.length (G.hosts g));
  Alcotest.(check int) "48 links (30 router + 18 access)" 48 (G.link_count g);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_isp_average_degree () =
  let g = Topology.Isp.create () in
  let d = G.avg_router_degree g in
  Alcotest.(check bool) "paper's 3.33" true (Float.abs (d -. (10.0 /. 3.0)) < 0.01)

let test_isp_numbering () =
  let g = Topology.Isp.create () in
  Alcotest.(check bool) "source is host 18" true (G.is_host g Topology.Isp.source);
  Alcotest.(check int) "source attaches to router 0" 0
    (G.router_of_host g Topology.Isp.source);
  Alcotest.(check int) "17 receiver candidates" 17
    (List.length Topology.Isp.receiver_hosts);
  List.iter
    (fun h -> Alcotest.(check bool) "receiver is host" true (G.is_host g h))
    Topology.Isp.receiver_hosts

(* ---- Generators ------------------------------------------------------- *)

let test_random_connected () =
  let rng = Stats.Rng.create 4 in
  let g = Topology.Generators.random_connected rng ~n:50 ~avg_degree:8.6 in
  Alcotest.(check bool) "connected" true (G.is_connected g);
  Alcotest.(check int) "50 routers" 50 (List.length (G.routers g));
  Alcotest.(check int) "one host per router" 50 (List.length (G.hosts g));
  let d = G.avg_router_degree g in
  Alcotest.(check bool) "degree near 8.6" true (Float.abs (d -. 8.6) < 0.2)

let test_random_connected_deterministic () =
  let mk () =
    let rng = Stats.Rng.create 99 in
    Topology.Generators.random_connected rng ~n:20 ~avg_degree:4.0
  in
  let links g = List.map (fun (l : G.link) -> (l.u, l.v)) (G.links g) in
  Alcotest.(check (list (pair int int))) "same seed, same graph"
    (links (mk ())) (links (mk ()))

let test_random_connected_invalid_degree () =
  let rng = Stats.Rng.create 4 in
  Alcotest.(check bool) "too-low degree rejected" true
    (try
       ignore (Topology.Generators.random_connected rng ~n:10 ~avg_degree:0.5);
       false
     with Invalid_argument _ -> true)

let test_waxman_connected () =
  let rng = Stats.Rng.create 8 in
  let g = Topology.Generators.waxman rng ~n:40 in
  Alcotest.(check bool) "connected" true (G.is_connected g);
  Alcotest.(check int) "routers" 40 (List.length (G.routers g))

let test_grid () =
  let g = Topology.Generators.grid ~hosts:false ~rows:3 ~cols:4 () in
  Alcotest.(check int) "nodes" 12 (G.node_count g);
  Alcotest.(check int) "links" ((2 * 4) + (3 * 3)) (G.link_count g);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_ring () =
  let g = Topology.Generators.ring ~hosts:false ~n:6 () in
  Alcotest.(check int) "links" 6 (G.link_count g);
  List.iter
    (fun r -> Alcotest.(check int) "degree 2" 2 (G.degree g r))
    (G.routers g)

let test_star () =
  let g = Topology.Generators.star ~hosts:false ~spokes:5 () in
  Alcotest.(check int) "hub degree" 5 (G.degree g 0);
  Alcotest.(check int) "nodes" 6 (G.node_count g)

let test_line () =
  let g = Topology.Generators.line ~hosts:false ~n:5 () in
  Alcotest.(check int) "links" 4 (G.link_count g);
  Alcotest.(check int) "end degree" 1 (G.degree g 0)

let test_balanced_tree () =
  let g = Topology.Generators.balanced_tree ~hosts:false ~depth:3 ~fanout:2 () in
  Alcotest.(check int) "nodes 1+2+4+8" 15 (G.node_count g);
  Alcotest.(check int) "links" 14 (G.link_count g);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_full_mesh () =
  let g = Topology.Generators.full_mesh ~hosts:false ~n:5 () in
  Alcotest.(check int) "links" 10 (G.link_count g)

let test_dumbbell () =
  let g = Topology.Generators.dumbbell ~hosts:false ~left:3 ~right:4 () in
  Alcotest.(check int) "nodes" 9 (G.node_count g);
  Alcotest.(check bool) "bottleneck exists" true (G.connected g 0 1)

let test_transit_stub () =
  let rng = Stats.Rng.create 12 in
  let g =
    Topology.Generators.transit_stub ~hosts:false rng ~transit:4
      ~stubs_per_transit:2 ~stub_size:3
  in
  Alcotest.(check int) "nodes 4 + 4*2*3" 28 (G.node_count g);
  Alcotest.(check bool) "connected" true (G.is_connected g)

(* Structural digest: node kinds, degrees and adjacency — byte-equal
   digests mean byte-equal topologies. *)
let graph_digest g =
  let buf = Buffer.create 1024 in
  for i = 0 to G.node_count g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%d%c:" i (if G.is_router g i then 'r' else 'h'));
    List.iter (fun j -> Buffer.add_string buf (Printf.sprintf "%d," j))
      (G.neighbors g i);
    Buffer.add_char buf ';'
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let test_power_law () =
  let rng = Stats.Rng.create 7 in
  let g = Topology.Generators.power_law ~hosts:false rng ~n:600 in
  Alcotest.(check int) "nodes" 600 (G.node_count g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  (* Heavy tail: the hubs tower over the m=2 arrivals. *)
  let degs = List.map (G.degree g) (G.routers g) in
  let dmax = List.fold_left max 0 degs in
  let small = List.length (List.filter (fun d -> d <= 4) degs) in
  Alcotest.(check bool) "has a hub (max degree >= 12)" true (dmax >= 12);
  Alcotest.(check bool) "most routers stay near degree m"
    true (small * 10 >= 600 * 6)

let test_power_law_deterministic () =
  let g1 = Topology.Generators.power_law (Stats.Rng.create 5) ~n:400 in
  let g2 = Topology.Generators.power_law (Stats.Rng.create 5) ~n:400 in
  let g3 = Topology.Generators.power_law (Stats.Rng.create 6) ~n:400 in
  Alcotest.(check string) "same seed, same bytes" (graph_digest g1)
    (graph_digest g2);
  Alcotest.(check bool) "different seed differs" true
    (graph_digest g1 <> graph_digest g3)

let test_as_hierarchy () =
  let rng = Stats.Rng.create 11 in
  let g = Topology.Generators.as_hierarchy ~hosts:false rng ~n:500 in
  Alcotest.(check int) "nodes" 500 (G.node_count g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  (* Stubs (the third tier) keep degree 1-2; the backbone does not. *)
  let core_deg = G.degree g 0 in
  Alcotest.(check bool) "core router degree >= 3" true (core_deg >= 3)

let test_as_hierarchy_deterministic () =
  let d s = graph_digest (Topology.Generators.as_hierarchy (Stats.Rng.create s) ~n:300) in
  Alcotest.(check string) "same seed, same bytes" (d 9) (d 9);
  Alcotest.(check bool) "different seed differs" true (d 9 <> d 10)

let test_internet_scale_build () =
  (* The churn workload's floor: n >= 5k must build fast and land
     connected (the Builder link index keeps this O(E)). *)
  let g = Topology.Generators.power_law ~hosts:false (Stats.Rng.create 1) ~n:5000 in
  Alcotest.(check int) "nodes" 5000 (G.node_count g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  let h = Topology.Generators.as_hierarchy ~hosts:false (Stats.Rng.create 2) ~n:5000 in
  Alcotest.(check int) "nodes" 5000 (G.node_count h);
  Alcotest.(check bool) "connected" true (G.is_connected h)

(* ---- Properties ------------------------------------------------------- *)

let prop_power_law_connected =
  QCheck.Test.make ~name:"power_law always connected" ~count:50
    QCheck.(pair (int_range 4 200) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Stats.Rng.create seed in
      G.is_connected (Topology.Generators.power_law ~hosts:false rng ~n))

let prop_as_hierarchy_connected =
  QCheck.Test.make ~name:"as_hierarchy always connected" ~count:50
    QCheck.(pair (int_range 41 300) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Stats.Rng.create seed in
      G.is_connected (Topology.Generators.as_hierarchy ~hosts:false rng ~n))

let prop_random_graphs_connected =
  QCheck.Test.make ~name:"random_connected always connected" ~count:50
    QCheck.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Stats.Rng.create seed in
      let deg = Float.min (float_of_int (n - 1)) 3.0 in
      let deg = Float.max deg (2.0 *. float_of_int (n - 1) /. float_of_int n) in
      let g = Topology.Generators.random_connected ~hosts:false rng ~n ~avg_degree:deg in
      G.is_connected g)

let prop_waxman_connected =
  QCheck.Test.make ~name:"waxman always connected" ~count:50
    QCheck.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Stats.Rng.create seed in
      G.is_connected (Topology.Generators.waxman ~hosts:false rng ~n))

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "directed costs" `Quick test_directed_costs;
          Alcotest.test_case "delay defaults" `Quick test_delay_defaults_to_cost;
          Alcotest.test_case "set cost" `Quick test_set_cost;
          Alcotest.test_case "missing link" `Quick test_missing_link;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "reject self loop" `Quick test_rejects_self_loop;
          Alcotest.test_case "reject duplicate" `Quick test_rejects_duplicate_link;
          Alcotest.test_case "reject multihomed host" `Quick test_rejects_multihomed_host;
          Alcotest.test_case "host mapping" `Quick test_host_router_mapping;
          Alcotest.test_case "randomize costs" `Quick test_randomize_costs;
          Alcotest.test_case "symmetrize" `Quick test_symmetrize;
          Alcotest.test_case "asymmetry present" `Quick test_asymmetric_fraction_nonzero;
          Alcotest.test_case "capability flag" `Quick test_multicast_capability_flag;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
        ] );
      ( "isp",
        [
          Alcotest.test_case "shape" `Quick test_isp_shape;
          Alcotest.test_case "average degree" `Quick test_isp_average_degree;
          Alcotest.test_case "numbering" `Quick test_isp_numbering;
        ] );
      ( "generators",
        [
          Alcotest.test_case "random_connected" `Quick test_random_connected;
          Alcotest.test_case "deterministic" `Quick test_random_connected_deterministic;
          Alcotest.test_case "invalid degree" `Quick test_random_connected_invalid_degree;
          Alcotest.test_case "waxman" `Quick test_waxman_connected;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "balanced tree" `Quick test_balanced_tree;
          Alcotest.test_case "full mesh" `Quick test_full_mesh;
          Alcotest.test_case "dumbbell" `Quick test_dumbbell;
          Alcotest.test_case "transit stub" `Quick test_transit_stub;
          Alcotest.test_case "power law" `Quick test_power_law;
          Alcotest.test_case "power law deterministic" `Quick
            test_power_law_deterministic;
          Alcotest.test_case "as hierarchy" `Quick test_as_hierarchy;
          Alcotest.test_case "as hierarchy deterministic" `Quick
            test_as_hierarchy_deterministic;
          Alcotest.test_case "internet scale build" `Quick
            test_internet_scale_build;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_graphs_connected;
            prop_waxman_connected;
            prop_power_law_connected;
            prop_as_hierarchy_connected;
          ] );
    ]
