(* The verification layer: checkpoint/restore soundness, explorer
   determinism, the injected-bug pipeline (find, minimize, golden
   replay). *)

let isp_sut protocol () =
  let graph = Topology.Isp.create () in
  Verif.Sut.make ~candidates:Topology.Isp.receiver_hosts protocol
    (Routing.Table.compute graph)
    ~source:Topology.Isp.source

let rand50_sut protocol ~seed () =
  let cfg = Experiments.Common.rand50_config ~seed in
  Verif.Sut.make ~candidates:cfg.Experiments.Common.candidates protocol
    (Routing.Table.compute cfg.Experiments.Common.graph)
    ~source:cfg.Experiments.Common.source

let all_protocols =
  [ Verif.Sut.Hbh; Verif.Sut.Reunite; Verif.Sut.Pim_ssm; Verif.Sut.Hpim_dm ]

(* ---- Snapshot round-trip (qcheck) -------------------------------------- *)

(* save -> mutate -> restore -> re-run must be bit-identical (digest
   equality) to running the suffix without the detour, and to a fresh
   session replaying the same history.  Exercised for every protocol
   on both paper topologies. *)
let snapshot_cases (sut : Verif.Sut.t) rng =
  let pick xs = List.nth xs (Stats.Rng.int rng (List.length xs)) in
  let member () = pick sut.Verif.Sut.candidates in
  let prefix = [ Verif.Scenario.Join (member ()) ] in
  let detour =
    [
      Verif.Scenario.Join (member ());
      pick
        [
          Verif.Scenario.Loss_burst 0.3;
          Verif.Scenario.Age;
          Verif.Scenario.Join (member ());
        ];
    ]
  in
  let suffix =
    [ pick [ Verif.Scenario.Join (member ()); Verif.Scenario.Age ] ]
  in
  (prefix, detour, suffix)

let run_events sut events =
  List.iter
    (fun ev ->
      Verif.Scenario.apply sut ev;
      ignore (Verif.Scenario.quiesce sut))
    events

let prop_snapshot_roundtrip name make_sut =
  QCheck.Test.make ~name ~count:4
    QCheck.(int_range 0 10_000)
    (fun seed ->
      List.for_all
        (fun protocol ->
          let rng = Stats.Rng.create seed in
          let sut = make_sut protocol () in
          ignore (Verif.Scenario.quiesce sut);
          let prefix, detour, suffix = snapshot_cases sut rng in
          run_events sut prefix;
          let at_save = Verif.Sut.state_digest sut in
          let restore = sut.Verif.Sut.save () in
          (* mutate: wander off, then rewind *)
          run_events sut detour;
          restore ();
          let after_restore = Verif.Sut.state_digest sut in
          (* re-run the suffix from the restored state *)
          run_events sut suffix;
          let replayed = Verif.Sut.state_digest sut in
          (* a second restore from the same snapshot must work too *)
          restore ();
          run_events sut suffix;
          let replayed_again = Verif.Sut.state_digest sut in
          (* fresh session, same history, no snapshot involved *)
          let fresh = make_sut protocol () in
          ignore (Verif.Scenario.quiesce fresh);
          run_events fresh prefix;
          run_events fresh suffix;
          let fresh_digest = Verif.Sut.state_digest fresh in
          after_restore = at_save
          && replayed = replayed_again
          && replayed = fresh_digest)
        all_protocols)

(* ---- Explorer determinism ---------------------------------------------- *)

let test_explorer_deterministic () =
  let outcome () =
    let config =
      { Verif.Explore.default_config with depth = 3; max_states = 120 }
    in
    Verif.Explore.run ~config (isp_sut Verif.Sut.Hbh ())
  in
  let a = outcome () and b = outcome () in
  Alcotest.(check int) "states" a.Verif.Explore.states b.Verif.Explore.states;
  Alcotest.(check int)
    "transitions" a.Verif.Explore.transitions b.Verif.Explore.transitions;
  Alcotest.(check int)
    "counterexamples"
    (List.length a.Verif.Explore.counterexamples)
    (List.length b.Verif.Explore.counterexamples)

(* ---- Clean protocols pass the oracles ---------------------------------- *)

let test_oracles_clean () =
  List.iter
    (fun protocol ->
      let sut = isp_sut protocol () in
      ignore (Verif.Scenario.quiesce sut);
      run_events sut
        [ Verif.Scenario.Join 19; Verif.Scenario.Join 28; Verif.Scenario.Join 33 ];
      let restore = sut.Verif.Sut.save () in
      let vs = Verif.Oracle.check sut in
      restore ();
      Alcotest.(check int)
        (Printf.sprintf "%s: no violations" sut.Verif.Sut.proto)
        0 (List.length vs))
    all_protocols

(* ---- Runtime monitors: healthy runs never fire -------------------------- *)

(* The monitor's debounce claim, as a property: membership churn is
   the healthy case — leaves decay over t2, joins fill in over a
   control period — so probes at the default t2 cadence may observe a
   transient at most twice in a row and must never confirm.  Any
   confirmed violation on a churn-only run is a monitor false
   positive (or a real protocol bug), both failures. *)
let prop_monitor_healthy_never_fires =
  QCheck.Test.make ~name:"monitor: churn-only runs never confirm a violation"
    ~count:5
    QCheck.(int_range 0 10_000)
    (fun seed ->
      List.for_all
        (fun protocol ->
          List.for_all
            (fun make_sut ->
              let sut : Verif.Sut.t = make_sut protocol () in
              ignore (Verif.Scenario.quiesce sut);
              let mon = Verif.Monitor.attach sut in
              let rng = Stats.Rng.create seed in
              let pick xs = List.nth xs (Stats.Rng.int rng (List.length xs)) in
              for _ = 1 to 4 do
                let ev =
                  match Stats.Rng.int rng 3 with
                  | 0 -> Verif.Scenario.Join (pick sut.Verif.Sut.candidates)
                  | 1 -> Verif.Scenario.Leave (pick sut.Verif.Sut.candidates)
                  | _ -> Verif.Scenario.Age
                in
                Verif.Scenario.apply sut ev;
                ignore (Verif.Scenario.quiesce sut)
              done;
              Verif.Monitor.stop mon;
              if Verif.Monitor.checks mon = 0 then
                QCheck.Test.fail_report "monitor never probed";
              if Verif.Monitor.violation_count mon > 0 then
                QCheck.Test.fail_reportf "%s: healthy run confirmed %d violation(s)"
                  sut.Verif.Sut.proto
                  (Verif.Monitor.violation_count mon);
              true)
            [ (fun p () -> isp_sut p ()); (fun p () -> rand50_sut p ~seed:7 ()) ])
        all_protocols)

(* ---- Injected bug: find, minimize, stay small -------------------------- *)

let with_frozen_marks f =
  Proto.Softstate.freeze_marks := true;
  Fun.protect ~finally:(fun () -> Proto.Softstate.freeze_marks := false) f

let test_injected_bug_caught_and_shrunk () =
  with_frozen_marks @@ fun () ->
  let make_sut = isp_sut Verif.Sut.Hbh in
  let config = { Verif.Explore.default_config with depth = 4 } in
  let o = Verif.Explore.run ~config (make_sut ()) in
  (* the acceptance bar: a real state space, and the planted bug found *)
  Alcotest.(check bool)
    "explores >= 1000 distinct states" true
    (o.Verif.Explore.states >= 1000);
  Alcotest.(check bool)
    "counterexample found" true
    (o.Verif.Explore.counterexamples <> []);
  let cx = List.hd o.Verif.Explore.counterexamples in
  let minimal = Verif.Shrink.minimize ~make_sut cx in
  Alcotest.(check bool)
    (Format.asprintf "shrunk to <= 6 events (got %a)" Verif.Scenario.pp_events
       minimal)
    true
    (List.length minimal <= 6);
  (* the minimized sequence still reproduces from a cold start *)
  let vs = Verif.Scenario.replay_events (make_sut ()) minimal in
  Alcotest.(check bool) "minimal sequence reproduces" true (vs <> [])

(* ---- Golden counterexample fixtures ------------------------------------ *)

let read_file path =
  (* dune runtest runs with cwd = test dir; dune exec from the root *)
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_mark_decay () =
  let plan = Fault.Plan.of_string (read_file "golden/hbh-mark-decay.plan") in
  (* text form round-trips *)
  let reparsed = Fault.Plan.of_string (Fault.Plan.to_string plan) in
  Alcotest.(check int)
    "round-trip directive count"
    (List.length (Fault.Plan.directives plan))
    (List.length (Fault.Plan.directives reparsed));
  (* with the bug planted, the fixture reproduces the violation *)
  let vs =
    with_frozen_marks (fun () ->
        Verif.Scenario.replay_plan (isp_sut Verif.Sut.Hbh ()) plan)
  in
  Alcotest.(check bool) "buggy replay violates" true (vs <> []);
  Alcotest.(check bool)
    "blackhole among violations" true
    (List.exists
       (fun (v : Verif.Oracle.violation) ->
         v.Verif.Oracle.oracle = "no_blackhole")
       vs);
  (* on the fixed protocol the same plan is clean: the fixture is a
     regression tripwire, not a permanent failure *)
  let vs = Verif.Scenario.replay_plan (isp_sut Verif.Sut.Hbh ()) plan in
  Alcotest.(check int) "clean replay passes" 0 (List.length vs)

let () =
  Alcotest.run "verif"
    [
      ( "snapshot",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_snapshot_roundtrip
              "snapshot save/mutate/restore/re-run = fresh run (ISP)"
              (fun p () -> isp_sut p ());
            prop_snapshot_roundtrip
              "snapshot save/mutate/restore/re-run = fresh run (rand50)"
              (fun p () -> rand50_sut p ~seed:7 ());
          ] );
      ( "explorer",
        [
          Alcotest.test_case "deterministic in seed" `Quick
            test_explorer_deterministic;
          Alcotest.test_case "clean protocols pass all oracles" `Quick
            test_oracles_clean;
        ] );
      ( "monitor",
        List.map QCheck_alcotest.to_alcotest
          [ prop_monitor_healthy_never_fires ] );
      ( "shrinking",
        [
          Alcotest.test_case "injected mark-decay bug found and minimized"
            `Slow test_injected_bug_caught_and_shrunk;
        ] );
      ( "golden",
        [
          Alcotest.test_case "mark-decay fixture loads and replays" `Quick
            test_golden_mark_decay;
        ] );
    ]
