(* Tests for workload generation: scenario draws and churn
   schedules. *)

let test_scenario_receivers_valid () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 1 in
  let s =
    Workload.Scenario.make rng g ~source:Topology.Isp.source
      ~candidates:Topology.Isp.receiver_hosts ~n:8
  in
  Alcotest.(check int) "eight receivers" 8 (List.length s.receivers);
  Alcotest.(check int) "distinct" 8
    (List.length (List.sort_uniq compare s.receivers));
  List.iter
    (fun r ->
      Alcotest.(check bool) "candidate" true
        (List.mem r Topology.Isp.receiver_hosts))
    s.receivers

let test_scenario_deterministic () =
  let mk () =
    let g = Topology.Isp.create () in
    let rng = Stats.Rng.create 7 in
    Workload.Scenario.make rng g ~source:Topology.Isp.source
      ~candidates:Topology.Isp.receiver_hosts ~n:5
  in
  let a = mk () and b = mk () in
  Alcotest.(check (list int)) "same receivers" a.receivers b.receivers;
  Alcotest.(check int) "same distances"
    (Routing.Table.distance a.table 0 17)
    (Routing.Table.distance b.table 0 17)

let test_scenario_too_many_receivers () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 1 in
  Alcotest.(check bool) "n > candidates rejected" true
    (try
       ignore
         (Workload.Scenario.make rng g ~source:Topology.Isp.source
            ~candidates:Topology.Isp.receiver_hosts ~n:18);
       false
     with Invalid_argument _ -> true)

let test_scenario_cost_range () =
  let g = Topology.Isp.create () in
  let rng = Stats.Rng.create 2 in
  Workload.Scenario.randomize rng g;
  List.iter
    (fun (l : Topology.Graph.link) ->
      Alcotest.(check bool) "within paper range" true
        (l.cost_uv >= Workload.Scenario.default_cost_lo
        && l.cost_uv <= Workload.Scenario.default_cost_hi))
    (Topology.Graph.links g)

(* ---- Churn ----------------------------------------------------------------- *)

let test_flash_crowd () =
  let rng = Stats.Rng.create 3 in
  let sched =
    Workload.Churn.flash_crowd rng ~candidates:[ 10; 11; 12; 13 ] ~n:3
      ~spacing:5.0
  in
  Alcotest.(check int) "three events" 3 (List.length sched);
  List.iteri
    (fun i (t, ev) ->
      Alcotest.(check (float 0.0)) "spaced" (5.0 *. float_of_int (i + 1)) t;
      match ev with
      | Workload.Churn.Join _ -> ()
      | Workload.Churn.Leave _ -> Alcotest.fail "no leaves in a flash crowd")
    sched

let test_poisson_consistency () =
  let rng = Stats.Rng.create 4 in
  let sched =
    Workload.Churn.poisson rng ~candidates:(List.init 10 (fun i -> 100 + i))
      ~rate:0.5 ~mean_hold:10.0 ~horizon:200.0
  in
  (* Events are time ordered and membership-consistent: no double
     join, no leave of a non-member. *)
  let rec check members last = function
    | [] -> ()
    | (t, ev) :: rest ->
        Alcotest.(check bool) "ordered" true (t >= last);
        Alcotest.(check bool) "within horizon" true (t <= 200.0);
        (match ev with
        | Workload.Churn.Join r ->
            Alcotest.(check bool) "not already member" false (List.mem r members);
            check (r :: members) t rest
        | Workload.Churn.Leave r ->
            Alcotest.(check bool) "was member" true (List.mem r members);
            check (List.filter (fun m -> m <> r) members) t rest)
  in
  Alcotest.(check bool) "schedule non-trivial" true (List.length sched > 5);
  check [] 0.0 sched

let test_members_at () =
  let sched =
    [
      (1.0, Workload.Churn.Join 5);
      (2.0, Workload.Churn.Join 6);
      (3.0, Workload.Churn.Leave 5);
    ]
  in
  Alcotest.(check (list int)) "after t=2" [ 5; 6 ] (Workload.Churn.members_at sched 2.5);
  Alcotest.(check (list int)) "after t=3" [ 6 ] (Workload.Churn.members_at sched 3.0);
  Alcotest.(check (list int)) "before anything" [] (Workload.Churn.members_at sched 0.5)

let prop_poisson_leaves_match_joins =
  QCheck.Test.make ~name:"every leave follows its join" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      let sched =
        Workload.Churn.poisson rng
          ~candidates:(List.init 5 (fun i -> i))
          ~rate:1.0 ~mean_hold:5.0 ~horizon:100.0
      in
      let ok = ref true in
      let members = ref [] in
      List.iter
        (fun (_, ev) ->
          match ev with
          | Workload.Churn.Join r ->
              if List.mem r !members then ok := false;
              members := r :: !members
          | Workload.Churn.Leave r ->
              if not (List.mem r !members) then ok := false;
              members := List.filter (fun m -> m <> r) !members)
        sched;
      !ok)

(* ---- Zipf popularity -------------------------------------------------- *)

let test_zipf_determinism () =
  let z = Workload.Zipf.create ~n:64 () in
  let draw seed =
    let rng = Stats.Rng.create seed in
    List.init 200 (fun _ -> Workload.Zipf.sample z rng)
  in
  Alcotest.(check (list int)) "same rng, same ranks" (draw 7) (draw 7);
  Alcotest.(check bool) "different rng differs" true (draw 7 <> draw 8)

let test_zipf_rank_frequency () =
  let n = 32 in
  let z = Workload.Zipf.create ~n () in
  (* pmf sums to 1 and decreases with rank. *)
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. Workload.Zipf.pmf z k;
    if k > 0 then
      Alcotest.(check bool) "pmf monotone" true
        (Workload.Zipf.pmf z k <= Workload.Zipf.pmf z (k - 1))
  done;
  Alcotest.(check bool) "pmf sums to ~1" true (abs_float (!total -. 1.0) < 1e-9);
  (* Empirical rank frequency: rank 0 beats rank n-1 decisively. *)
  let rng = Stats.Rng.create 3 in
  let counts = Array.make n 0 in
  for _ = 1 to 20_000 do
    let k = Workload.Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 is hottest" true
    (Array.for_all (fun c -> c <= counts.(0)) counts);
  Alcotest.(check bool) "head ~ 1/H_n share" true
    (let p0 = float_of_int counts.(0) /. 20_000.0 in
     abs_float (p0 -. Workload.Zipf.pmf z 0) < 0.02)

let test_zipf_uniform_when_s0 () =
  let z = Workload.Zipf.create ~s:0.0 ~n:10 () in
  for k = 0 to 9 do
    Alcotest.(check bool) "uniform pmf" true
      (abs_float (Workload.Zipf.pmf z k -. 0.1) < 1e-9)
  done

(* ---- Multi-channel churn ---------------------------------------------- *)

let test_multi_projection_consistency () =
  (* The merged stream projected onto channel c must be exactly the
     standalone stream of c's derived rng — per channel, members_at
     agrees at every event time. *)
  let channels = 8 in
  let candidates = List.init 20 (fun i -> 100 + i) in
  let z = Workload.Zipf.create ~n:channels () in
  let merged =
    Workload.Churn.multi ~seed:42 ~channels ~candidates ~rate:0.05
      ~popularity:z ~mean_hold:300.0 ~horizon:5000.0
  in
  for c = 0 to channels - 1 do
    let standalone =
      Workload.Churn.poisson
        (Stats.Rng.derive ~seed:42 ~index:c)
        ~candidates
        ~rate:(0.05 *. Workload.Zipf.pmf z c)
        ~mean_hold:300.0 ~horizon:5000.0
    in
    let projected = Workload.Churn.project merged c in
    Alcotest.(check int)
      (Printf.sprintf "channel %d event count" c)
      (List.length standalone) (List.length projected);
    List.iter2
      (fun (t1, e1) (t2, e2) ->
        Alcotest.(check (float 0.0)) "event time" t1 t2;
        Alcotest.(check bool) "event" true (e1 = e2))
      standalone projected;
    List.iter
      (fun (t, _) ->
        Alcotest.(check (list int))
          (Printf.sprintf "members_at agree (channel %d)" c)
          (Workload.Churn.members_at standalone t)
          (Workload.Churn.members_at projected t))
      standalone
  done

let test_multi_deterministic_and_ordered () =
  let candidates = List.init 10 (fun i -> i) in
  let z = Workload.Zipf.create ~n:16 () in
  let mk () =
    Workload.Churn.multi ~seed:9 ~channels:16 ~candidates ~rate:0.1
      ~popularity:z ~mean_hold:200.0 ~horizon:2000.0
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "byte-identical rebuild" true (a = b);
  Alcotest.(check bool) "time-ordered" true
    (let rec ordered = function
       | (t1, c1, _) :: ((t2, c2, _) :: _ as rest) ->
           (t1 < t2 || (t1 = t2 && c1 <= c2)) && ordered rest
       | _ -> true
     in
     ordered a);
  Alcotest.(check bool) "nonempty" true (a <> [])

let prop_multi_projection =
  QCheck.Test.make ~name:"merged stream projects to standalone schedules"
    ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let channels = 6 in
      let candidates = List.init 8 (fun i -> i) in
      let z = Workload.Zipf.create ~n:channels () in
      let merged =
        Workload.Churn.multi ~seed ~channels ~candidates ~rate:0.2
          ~popularity:z ~mean_hold:50.0 ~horizon:500.0
      in
      List.for_all
        (fun c ->
          Workload.Churn.project merged c
          = Workload.Churn.poisson
              (Stats.Rng.derive ~seed ~index:c)
              ~candidates
              ~rate:(0.2 *. Workload.Zipf.pmf z c)
              ~mean_hold:50.0 ~horizon:500.0)
        (List.init channels (fun c -> c)))

let () =
  Alcotest.run "workload"
    [
      ( "scenario",
        [
          Alcotest.test_case "receivers valid" `Quick test_scenario_receivers_valid;
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "too many receivers" `Quick test_scenario_too_many_receivers;
          Alcotest.test_case "cost range" `Quick test_scenario_cost_range;
        ] );
      ( "churn",
        [
          Alcotest.test_case "flash crowd" `Quick test_flash_crowd;
          Alcotest.test_case "poisson consistency" `Quick test_poisson_consistency;
          Alcotest.test_case "members_at" `Quick test_members_at;
          Alcotest.test_case "zipf deterministic" `Quick test_zipf_determinism;
          Alcotest.test_case "zipf rank frequency" `Quick
            test_zipf_rank_frequency;
          Alcotest.test_case "zipf uniform at s=0" `Quick
            test_zipf_uniform_when_s0;
          Alcotest.test_case "multi-channel projection" `Quick
            test_multi_projection_consistency;
          Alcotest.test_case "multi-channel deterministic" `Quick
            test_multi_deterministic_and_ordered;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_poisson_leaves_match_joins; prop_multi_projection ] );
    ]
